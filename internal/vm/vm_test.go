package vm

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"halfprice/internal/asm"
	"halfprice/internal/isa"
)

func run(t *testing.T, src string) *Machine {
	t.Helper()
	m := New(asm.MustAssemble(src))
	if _, err := m.Run(1_000_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !m.Halted {
		t.Fatal("program did not halt")
	}
	return m
}

func TestMemoryReadWrite(t *testing.T) {
	m := NewMemory()
	if m.Read(0x5000, 8) != 0 {
		t.Fatal("untouched memory not zero")
	}
	m.Write(0x5000, 0x1122334455667788, 8)
	if got := m.Read(0x5000, 8); got != 0x1122334455667788 {
		t.Fatalf("read = %#x", got)
	}
	if got := m.Read(0x5000, 4); got != 0x55667788 {
		t.Fatalf("4-byte read = %#x", got)
	}
	if got := m.LoadByte(0x5007); got != 0x11 {
		t.Fatalf("byte read = %#x", got)
	}
	// Cross-page write.
	m.Write(0x5FFE, 0xAABB, 8)
	if got := m.Read(0x5FFE, 8); got != 0xAABB {
		t.Fatalf("cross-page = %#x", got)
	}
	if m.Pages() < 2 {
		t.Fatalf("pages = %d", m.Pages())
	}
	if !strings.Contains(m.String(), "pages") {
		t.Fatal("String() malformed")
	}
}

// Property: memory write-then-read returns the written value for any
// address and any of the three access sizes.
func TestMemoryRoundTripProperty(t *testing.T) {
	f := func(addr uint32, v uint64, szSel uint8) bool {
		size := []int{1, 4, 8}[szSel%3]
		m := NewMemory()
		m.Write(uint64(addr), v, size)
		mask := ^uint64(0)
		if size < 8 {
			mask = 1<<(8*size) - 1
		}
		return m.Read(uint64(addr), size) == v&mask
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestArithmetic(t *testing.T) {
	m := run(t, `
	ldi r1, 7
	ldi r2, 3
	add r3, r1, r2
	sub r4, r1, r2
	mul r5, r1, r2
	div r6, r1, r2
	rem r7, r1, r2
	and r8, r1, r2
	or  r9, r1, r2
	xor r10, r1, r2
	andnot r11, r1, r2
	sll r12, r1, r2
	srl r13, r1, r2
	sra r14, r1, r2
	cmplt r15, r2, r1
	cmple r16, r1, r1
	cmpeq r17, r1, r2
	cmpult r18, r2, r1
	halt
`)
	want := map[int]uint64{3: 10, 4: 4, 5: 21, 6: 2, 7: 1, 8: 3, 9: 7, 10: 4,
		11: 4, 12: 56, 13: 0, 14: 0, 15: 1, 16: 1, 17: 0, 18: 1}
	for r, w := range want {
		if got := m.Regs[r]; got != w {
			t.Errorf("r%d = %d, want %d", r, got, w)
		}
	}
}

func TestImmediatesAndShifts(t *testing.T) {
	m := run(t, `
	ldi r1, -5
	addi r2, r1, 10
	andi r3, r1, 0xF
	ori r4, r1, 0
	xori r5, r1, -1
	slli r6, r2, 4
	srli r7, r6, 2
	srai r8, r1, 1
	cmpeqi r9, r2, 5
	cmplti r10, r1, 0
	cmplei r11, r1, -5
	halt
`)
	if int64(m.Regs[2]) != 5 {
		t.Errorf("addi = %d", int64(m.Regs[2]))
	}
	if m.Regs[3] != 0xB {
		t.Errorf("andi = %#x", m.Regs[3])
	}
	if int64(m.Regs[5]) != 4 {
		t.Errorf("xori = %d", int64(m.Regs[5]))
	}
	if m.Regs[6] != 80 || m.Regs[7] != 20 {
		t.Errorf("shifts = %d, %d", m.Regs[6], m.Regs[7])
	}
	if int64(m.Regs[8]) != -3 {
		t.Errorf("srai = %d", int64(m.Regs[8]))
	}
	if m.Regs[9] != 1 || m.Regs[10] != 1 || m.Regs[11] != 1 {
		t.Errorf("compare-immediates = %d,%d,%d", m.Regs[9], m.Regs[10], m.Regs[11])
	}
}

func TestLdih(t *testing.T) {
	m := run(t, "ldi r1, 1\nldih r2, r1, 2\nhalt")
	if m.Regs[2] != 1+2<<32 {
		t.Fatalf("ldih = %#x", m.Regs[2])
	}
}

func TestZeroRegisterSemantics(t *testing.T) {
	m := run(t, `
	ldi r31, 99       # write discarded
	add r1, r31, r31  # reads as zero
	halt
`)
	if m.Regs[31] != 0 || m.Regs[1] != 0 {
		t.Fatalf("zero reg: r31=%d r1=%d", m.Regs[31], m.Regs[1])
	}
}

func TestMemoryOps(t *testing.T) {
	m := run(t, `
	.data
buf:	.space 64
	.text
	ldi r1, buf
	ldi r2, -2
	stq r2, 0(r1)
	ldq r3, 0(r1)
	stl r2, 16(r1)
	ldl r4, 16(r1)
	stb r2, 32(r1)
	ldbu r5, 32(r1)
	halt
`)
	if int64(m.Regs[3]) != -2 {
		t.Errorf("ldq = %d", int64(m.Regs[3]))
	}
	if int64(m.Regs[4]) != -2 {
		t.Errorf("ldl sign-extend = %d", int64(m.Regs[4]))
	}
	if m.Regs[5] != 0xFE {
		t.Errorf("ldbu zero-extend = %#x", m.Regs[5])
	}
}

func TestFloatOps(t *testing.T) {
	m := run(t, `
	ldi r1, 9
	itof f1, r1
	fsqrt f2, f1
	ldi r2, 2
	itof f3, r2
	fadd f4, f2, f3
	fsub f5, f2, f3
	fmul f6, f2, f3
	fdiv f7, f2, f3
	fneg f8, f2
	fabs f9, f8
	fmov f10, f9
	fcmplt r3, f3, f2
	fcmpeq r4, f2, f2
	fcmple r5, f2, f3
	ftoi r6, f6
	halt
`)
	f := func(i int) float64 { return math.Float64frombits(m.Regs[32+i]) }
	if f(2) != 3 {
		t.Errorf("fsqrt = %v", f(2))
	}
	if f(4) != 5 || f(5) != 1 || f(6) != 6 || f(7) != 1.5 {
		t.Errorf("f arith = %v %v %v %v", f(4), f(5), f(6), f(7))
	}
	if f(8) != -3 || f(9) != 3 || f(10) != 3 {
		t.Errorf("fneg/fabs/fmov = %v %v %v", f(8), f(9), f(10))
	}
	if m.Regs[3] != 1 || m.Regs[4] != 1 || m.Regs[5] != 0 {
		t.Errorf("fcmp = %d %d %d", m.Regs[3], m.Regs[4], m.Regs[5])
	}
	if m.Regs[6] != 6 {
		t.Errorf("ftoi = %d", m.Regs[6])
	}
}

func TestLoopAndBranches(t *testing.T) {
	// Sum 1..10 with a countdown loop.
	m := run(t, `
	ldi r1, 10
	ldi r2, 0
loop:
	add r2, r2, r1
	subi r1, r1, 1
	bnez r1, loop
	halt
`)
	if m.Regs[2] != 55 {
		t.Fatalf("sum = %d", m.Regs[2])
	}
}

func TestAllBranchConditions(t *testing.T) {
	m := run(t, `
	ldi r1, -1
	ldi r10, 0
	bltz r1, a
	halt
a:	blez r1, b
	halt
b:	ldi r2, 1
	bgtz r2, c
	halt
c:	bgez r2, d
	halt
d:	ldi r3, 0
	beqz r3, e
	halt
e:	bnez r2, f
	halt
f:	ldi r10, 42
	halt
`)
	if m.Regs[10] != 42 {
		t.Fatalf("branch chain did not complete: r10=%d", m.Regs[10])
	}
}

func TestCallRet(t *testing.T) {
	m := run(t, `
	ldi r16, 5
	call double
	mov r1, r0
	halt
double:
	add r0, r16, r16
	ret
`)
	if m.Regs[1] != 10 {
		t.Fatalf("call/ret result = %d", m.Regs[1])
	}
}

func TestIndirectJumpTable(t *testing.T) {
	m := run(t, `
	.data
table:	.quad case0, case1
	.text
	ldi r1, table
	ldi r2, 1          # select case1
	slli r3, r2, 3
	add r3, r3, r1
	ldq r4, 0(r3)
	jmp r31, (r4)
case0:
	ldi r5, 100
	halt
case1:
	ldi r5, 200
	halt
`)
	if m.Regs[5] != 200 {
		t.Fatalf("jump table picked %d", m.Regs[5])
	}
}

func TestPutcOutput(t *testing.T) {
	m := run(t, `
	ldi r1, 'H'
	putc r1
	ldi r1, 'i'
	putc r1
	halt
`)
	if got := m.Output.String(); got != "Hi" {
		t.Fatalf("output = %q", got)
	}
}

func TestTraps(t *testing.T) {
	// Divide by zero.
	m := New(asm.MustAssemble("ldi r1, 1\nldi r2, 0\ndiv r3, r1, r2\nhalt"))
	if _, err := m.Run(100); err == nil || !strings.Contains(err.Error(), "divide by zero") {
		t.Fatalf("div err = %v", err)
	}
	// Run off the end of the text segment.
	m2 := New(asm.MustAssemble("nop"))
	if _, err := m2.Run(100); err == nil || !strings.Contains(err.Error(), "outside text") {
		t.Fatalf("fall-off err = %v", err)
	}
	// Step after halt.
	m3 := run(t, "halt")
	if _, err := m3.Step(); err != ErrHalted {
		t.Fatalf("step-after-halt err = %v", err)
	}
}

func TestRunMaxInsts(t *testing.T) {
	m := New(asm.MustAssemble("loop: b loop"))
	n, err := m.Run(500)
	if err != nil || n != 500 || m.Halted {
		t.Fatalf("n=%d err=%v halted=%v", n, err, m.Halted)
	}
}

func TestExecRecords(t *testing.T) {
	m := New(asm.MustAssemble(`
	ldi r1, 2
	beqz r31, skip
	nop
skip:
	stq r1, 64(r31)
	ldq r2, 64(r31)
	halt
`))
	var recs []Exec
	for !m.Halted {
		r, err := m.Step()
		if err != nil {
			t.Fatal(err)
		}
		recs = append(recs, r)
	}
	if len(recs) != 5 {
		t.Fatalf("%d records", len(recs))
	}
	if recs[0].Seq != 0 || recs[1].Seq != 1 {
		t.Fatal("Seq not monotone")
	}
	br := recs[1]
	if !br.Taken || br.NextPC != recs[2].PC {
		t.Fatalf("branch record %+v; next real PC %#x", br, recs[2].PC)
	}
	if recs[2].Inst.Op != isa.OpSTQ || recs[2].EffAddr != 64 {
		t.Fatalf("store record %+v", recs[2])
	}
	if recs[3].EffAddr != 64 {
		t.Fatalf("load record %+v", recs[3])
	}
	if m.Regs[2] != 2 {
		t.Fatalf("store/load value = %d", m.Regs[2])
	}
}

func TestStackUse(t *testing.T) {
	m := run(t, `
	subi sp, sp, 16
	ldi r1, 77
	stq r1, 0(sp)
	stq ra, 8(sp)
	ldq r2, 0(sp)
	addi sp, sp, 16
	halt
`)
	if m.Regs[2] != 77 {
		t.Fatalf("stack round-trip = %d", m.Regs[2])
	}
	if m.Regs[isa.RegSP] != asm.StackTop {
		t.Fatalf("sp = %#x", m.Regs[isa.RegSP])
	}
}
