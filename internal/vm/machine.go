package vm

import (
	"bytes"
	"errors"
	"fmt"
	"math"

	"halfprice/internal/asm"
	"halfprice/internal/isa"
)

// Exec is the architectural record of one executed instruction — exactly
// the oracle information the timing pipeline needs: where it was, what it
// was, where control went, and (for memory operations) the effective
// address.
type Exec struct {
	Seq     uint64 // dynamic instruction number, starting at 0
	PC      uint64
	Inst    isa.Inst
	NextPC  uint64
	EffAddr uint64 // loads and stores only
	Taken   bool   // conditional branches: outcome; unconditional: true
}

// Trap describes an architectural fault (bad PC, divide by zero).
type Trap struct {
	PC  uint64
	Msg string
}

func (t *Trap) Error() string { return fmt.Sprintf("vm: trap at %#x: %s", t.PC, t.Msg) }

// ErrHalted is returned by Step once the machine has executed HALT.
var ErrHalted = errors.New("vm: machine halted")

// Machine is the architectural state of one HPA64 program.
type Machine struct {
	Mem    *Memory
	Regs   [isa.NumArchRegs]uint64
	PC     uint64
	Halted bool
	Output bytes.Buffer

	prog *asm.Program
	seq  uint64
}

// New loads the program (data segment into memory, SP and PC initialised)
// and returns a machine ready to Step.
func New(p *asm.Program) *Machine {
	m := &Machine{Mem: NewMemory(), prog: p, PC: p.Entry()}
	m.Mem.StoreBytes(asm.DataBase, p.Data)
	// Mirror the text segment into memory so the program image is complete
	// (nothing in the workloads reads it, but a real loader would).
	for i, in := range p.Insts {
		m.Mem.Write(p.PCOf(i), isa.Encode(in), 8)
	}
	m.Regs[isa.RegSP] = asm.StackTop
	return m
}

// Program returns the loaded program.
func (m *Machine) Program() *asm.Program { return m.prog }

// InstCount returns the number of instructions executed so far.
func (m *Machine) InstCount() uint64 { return m.seq }

func (m *Machine) reg(r isa.Reg) uint64 {
	if r.IsZero() || !r.Valid() {
		return 0
	}
	return m.Regs[r]
}

func (m *Machine) setReg(r isa.Reg, v uint64) {
	if r.IsZero() || !r.Valid() {
		return
	}
	m.Regs[r] = v
}

func (m *Machine) freg(r isa.Reg) float64 { return math.Float64frombits(m.reg(r)) }

func (m *Machine) setFreg(r isa.Reg, v float64) { m.setReg(r, math.Float64bits(v)) }

// Step executes one instruction and returns its execution record.
func (m *Machine) Step() (Exec, error) {
	if m.Halted {
		return Exec{}, ErrHalted
	}
	idx := m.prog.IndexOf(m.PC)
	if idx < 0 {
		return Exec{}, &Trap{PC: m.PC, Msg: "PC outside text segment"}
	}
	in := m.prog.Insts[idx]
	rec := Exec{Seq: m.seq, PC: m.PC, Inst: in, NextPC: m.PC + isa.InstBytes}
	m.seq++

	a, b := m.reg(in.Ra), m.reg(in.Rb)
	switch in.Op {
	case isa.OpADD:
		m.setReg(in.Rd, a+b)
	case isa.OpSUB:
		m.setReg(in.Rd, a-b)
	case isa.OpMUL:
		m.setReg(in.Rd, uint64(int64(a)*int64(b)))
	case isa.OpDIV:
		if b == 0 {
			return Exec{}, &Trap{PC: rec.PC, Msg: "integer divide by zero"}
		}
		m.setReg(in.Rd, uint64(int64(a)/int64(b)))
	case isa.OpREM:
		if b == 0 {
			return Exec{}, &Trap{PC: rec.PC, Msg: "integer remainder by zero"}
		}
		m.setReg(in.Rd, uint64(int64(a)%int64(b)))
	case isa.OpAND:
		m.setReg(in.Rd, a&b)
	case isa.OpOR:
		m.setReg(in.Rd, a|b)
	case isa.OpXOR:
		m.setReg(in.Rd, a^b)
	case isa.OpANDNOT:
		m.setReg(in.Rd, a&^b)
	case isa.OpSLL:
		m.setReg(in.Rd, a<<(b&63))
	case isa.OpSRL:
		m.setReg(in.Rd, a>>(b&63))
	case isa.OpSRA:
		m.setReg(in.Rd, uint64(int64(a)>>(b&63)))
	case isa.OpCMPEQ:
		m.setReg(in.Rd, boolBit(a == b))
	case isa.OpCMPLT:
		m.setReg(in.Rd, boolBit(int64(a) < int64(b)))
	case isa.OpCMPLE:
		m.setReg(in.Rd, boolBit(int64(a) <= int64(b)))
	case isa.OpCMPULT:
		m.setReg(in.Rd, boolBit(a < b))

	case isa.OpADDI:
		m.setReg(in.Rd, a+uint64(in.Imm))
	case isa.OpANDI:
		m.setReg(in.Rd, a&uint64(in.Imm))
	case isa.OpORI:
		m.setReg(in.Rd, a|uint64(in.Imm))
	case isa.OpXORI:
		m.setReg(in.Rd, a^uint64(in.Imm))
	case isa.OpSLLI:
		m.setReg(in.Rd, a<<(uint64(in.Imm)&63))
	case isa.OpSRLI:
		m.setReg(in.Rd, a>>(uint64(in.Imm)&63))
	case isa.OpSRAI:
		m.setReg(in.Rd, uint64(int64(a)>>(uint64(in.Imm)&63)))
	case isa.OpCMPEQI:
		m.setReg(in.Rd, boolBit(int64(a) == in.Imm))
	case isa.OpCMPLTI:
		m.setReg(in.Rd, boolBit(int64(a) < in.Imm))
	case isa.OpCMPLEI:
		m.setReg(in.Rd, boolBit(int64(a) <= in.Imm))

	case isa.OpLDI:
		m.setReg(in.Rd, uint64(in.Imm))
	case isa.OpLDIH:
		m.setReg(in.Rd, a+uint64(in.Imm)<<32)

	case isa.OpFADD:
		m.setFreg(in.Rd, m.freg(in.Ra)+m.freg(in.Rb))
	case isa.OpFSUB:
		m.setFreg(in.Rd, m.freg(in.Ra)-m.freg(in.Rb))
	case isa.OpFMUL:
		m.setFreg(in.Rd, m.freg(in.Ra)*m.freg(in.Rb))
	case isa.OpFDIV:
		m.setFreg(in.Rd, m.freg(in.Ra)/m.freg(in.Rb))
	case isa.OpFCMPEQ:
		//hp:nolint floatcmp -- FCMPEQ architecturally IS exact IEEE 754 equality
		m.setReg(in.Rd, boolBit(m.freg(in.Ra) == m.freg(in.Rb)))
	case isa.OpFCMPLT:
		m.setReg(in.Rd, boolBit(m.freg(in.Ra) < m.freg(in.Rb)))
	case isa.OpFCMPLE:
		m.setReg(in.Rd, boolBit(m.freg(in.Ra) <= m.freg(in.Rb)))
	case isa.OpFMOV:
		m.setReg(in.Rd, a)
	case isa.OpFNEG:
		m.setFreg(in.Rd, -m.freg(in.Ra))
	case isa.OpFABS:
		m.setFreg(in.Rd, math.Abs(m.freg(in.Ra)))
	case isa.OpFSQRT:
		m.setFreg(in.Rd, math.Sqrt(m.freg(in.Ra)))
	case isa.OpITOF:
		m.setFreg(in.Rd, float64(int64(a)))
	case isa.OpFTOI:
		m.setReg(in.Rd, uint64(int64(m.freg(in.Ra))))

	case isa.OpLDQ:
		rec.EffAddr = a + uint64(in.Imm)
		m.setReg(in.Rd, m.Mem.Read(rec.EffAddr, 8))
	case isa.OpLDL:
		rec.EffAddr = a + uint64(in.Imm)
		m.setReg(in.Rd, uint64(int64(int32(m.Mem.Read(rec.EffAddr, 4)))))
	case isa.OpLDBU:
		rec.EffAddr = a + uint64(in.Imm)
		m.setReg(in.Rd, m.Mem.Read(rec.EffAddr, 1))
	case isa.OpLDF:
		rec.EffAddr = a + uint64(in.Imm)
		m.setReg(in.Rd, m.Mem.Read(rec.EffAddr, 8))
	case isa.OpSTQ, isa.OpSTF:
		rec.EffAddr = a + uint64(in.Imm)
		m.Mem.Write(rec.EffAddr, m.reg(in.Rd), 8)
	case isa.OpSTL:
		rec.EffAddr = a + uint64(in.Imm)
		m.Mem.Write(rec.EffAddr, m.reg(in.Rd), 4)
	case isa.OpSTB:
		rec.EffAddr = a + uint64(in.Imm)
		m.Mem.Write(rec.EffAddr, m.reg(in.Rd), 1)

	case isa.OpBEQZ, isa.OpBNEZ, isa.OpBLTZ, isa.OpBGEZ, isa.OpBGTZ, isa.OpBLEZ:
		rec.Taken = condTaken(in.Op, int64(a))
		if rec.Taken {
			rec.NextPC, _ = asm.BranchTarget(in, rec.PC)
		}
	case isa.OpBR:
		rec.Taken = true
		m.setReg(in.Rd, rec.PC+isa.InstBytes)
		rec.NextPC, _ = asm.BranchTarget(in, rec.PC)
	case isa.OpJMP:
		rec.Taken = true
		ret := rec.PC + isa.InstBytes
		rec.NextPC = a
		m.setReg(in.Rd, ret)

	case isa.OpPUTC:
		m.Output.WriteByte(byte(a))
	case isa.OpHALT:
		m.Halted = true
		rec.NextPC = rec.PC
	default:
		return Exec{}, &Trap{PC: rec.PC, Msg: fmt.Sprintf("unimplemented opcode %v", in.Op)}
	}
	m.PC = rec.NextPC
	return rec, nil
}

func condTaken(op isa.Opcode, v int64) bool {
	switch op {
	case isa.OpBEQZ:
		return v == 0
	case isa.OpBNEZ:
		return v != 0
	case isa.OpBLTZ:
		return v < 0
	case isa.OpBGEZ:
		return v >= 0
	case isa.OpBGTZ:
		return v > 0
	case isa.OpBLEZ:
		return v <= 0
	}
	return false
}

func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// Run executes until HALT, a trap, or maxInsts instructions. It returns
// the number of instructions executed. Reaching maxInsts is not an error;
// callers distinguish it via Halted.
func (m *Machine) Run(maxInsts uint64) (uint64, error) {
	start := m.seq
	for !m.Halted && m.seq-start < maxInsts {
		if _, err := m.Step(); err != nil {
			return m.seq - start, err
		}
	}
	return m.seq - start, nil
}
