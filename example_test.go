package halfprice_test

import (
	"fmt"
	"strings"

	"halfprice"
)

// The headline experiment in miniature: the half-price machine stays
// within a few percent of the full-price baseline.
func ExampleSimulate() {
	base := halfprice.MustSimulate(halfprice.Config4Wide(), "crafty", 50000)

	cfg := halfprice.Config4Wide()
	cfg.Wakeup = halfprice.WakeupSequential
	cfg.Regfile = halfprice.RFSequential
	hp := halfprice.MustSimulate(cfg, "crafty", 50000)

	fmt.Println("committed:", hp.Committed)
	fmt.Println("within 5% of base:", hp.IPC() > 0.95*base.IPC())
	// Output:
	// committed: 50000
	// within 5% of base: true
}

// Driving the experiment harness directly: NewRunner is the entry point
// for reproducing any of the paper's tables and figures as structured
// data. Options.Parallel bounds the worker pool the sweep fans out over
// (the commands' -j flag); memoisation dedupes shared configurations, so
// the base machine below simulates once even though both series need it,
// and results are bit-identical at every pool size.
func ExampleNewRunner() {
	r := halfprice.NewRunner(halfprice.Options{
		Insts:      20000,
		Benchmarks: []string{"gzip", "mcf"},
		Parallel:   4, // 0 = GOMAXPROCS, 1 = serial
	})
	res := r.Figure16Combined()

	combined, _ := res.Get("combined-4w", "gzip")
	fmt.Println("series:", len(res.Series))
	fmt.Println("gzip combined within 5% of base:", combined > 0.95)
	fmt.Println("simulations:", r.Sims(), "memo hits:", r.Hits())
	// Output:
	// series: 2
	// gzip combined within 5% of base: true
	// simulations: 8 memo hits: 0
}

// Assembly programs run end to end: assembler, functional execution,
// timing pipeline.
func ExampleSimulateProgram() {
	st, err := halfprice.SimulateProgram(halfprice.Config4Wide(), `
	ldi r1, 10
loop:
	subi r1, r1, 1
	bnez r1, loop
	halt
`, 0)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("instructions:", st.Committed)
	// Output:
	// instructions: 22
}

// The circuit models reproduce the paper's complexity claims exactly.
func ExampleSchedulerDelayPs() {
	conv := halfprice.SchedulerDelayPs(64, 4, false)
	seq := halfprice.SchedulerDelayPs(64, 4, true)
	fmt.Printf("%.0f ps -> %.0f ps (%.1f%% faster)\n", conv, seq, 100*(conv-seq)/seq)
	// Output:
	// 466 ps -> 374 ps (24.6% faster)
}

// Pipeview charts show each instruction's journey through the stages.
func ExampleRenderPipeline() {
	out, _ := halfprice.RenderPipeline(halfprice.Config4Wide(), `
	ldi r1, 7
	addi r2, r1, 1
	halt
`, 3)
	// The dependent addi issues after its producer's result is ready.
	rows := strings.Split(strings.TrimSpace(out), "\n")
	fmt.Println("instructions charted:", len(rows))
	fmt.Println("dependent row has all stages:",
		strings.Contains(rows[1], "F") && strings.Contains(rows[1], "C"))
	// Output:
	// instructions charted: 3
	// dependent row has all stages: true
}
