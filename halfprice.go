// Package halfprice is a reproduction of "Half-Price Architecture"
// (Ilhyun Kim and Mikko H. Lipasti, ISCA 2003) as a Go library.
//
// The paper observes that out-of-order cores overdesign their
// timing-critical structures for the uncommon case of two simultaneous
// source operands, and proposes two half-price techniques: sequential
// wakeup (one tag comparator per issue-queue entry on a fast bus, the
// other side on a one-cycle-delayed slow bus, steered by a last-arriving
// operand predictor) and sequential register access (one register read
// port per issue slot, with double reads detected in the scheduler and
// charged one cycle plus one issue slot).
//
// This package is the public facade over the full simulation stack:
//
//   - internal/uarch: a 12-stage speculative-scheduling out-of-order
//     pipeline (RUU window, LSQ, non-selective/selective replay) with the
//     conventional, sequential-wakeup and tag-elimination schedulers and
//     all four register-file organisations.
//   - internal/trace: calibrated synthetic SPEC CINT2000 workloads plus
//     the execution-driven stream from the functional simulator.
//   - internal/isa, internal/asm, internal/vm: the HPA64 ISA, its
//     assembler and its architectural simulator.
//   - internal/experiments: one harness per table and figure of the
//     paper's evaluation.
//
// Quick start:
//
//	cfg := halfprice.Config4Wide()
//	cfg.Wakeup = halfprice.WakeupSequential
//	cfg.Regfile = halfprice.RFSequential
//	st, err := halfprice.Simulate(cfg, "gzip", 200000)
//	if err != nil {
//		log.Fatal(err)
//	}
//	fmt.Printf("IPC %.2f\n", st.IPC())
package halfprice

import (
	"fmt"
	"io"
	"strings"

	"halfprice/internal/asm"
	"halfprice/internal/experiments"
	"halfprice/internal/store"
	"halfprice/internal/timing"
	"halfprice/internal/trace"
	"halfprice/internal/uarch"
	"halfprice/internal/vm"
	"halfprice/internal/workloads"
)

// Re-exported configuration types. Config is the full machine description
// (Table 1 defaults via Config4Wide/Config8Wide); Stats is everything a
// run measures.
type (
	// Config describes one simulated machine.
	Config = uarch.Config
	// Stats holds the measurements of one simulation run.
	Stats = uarch.Stats
	// WakeupScheme selects the issue-queue wakeup logic.
	WakeupScheme = uarch.WakeupScheme
	// RegfileScheme selects the register-file port organisation.
	RegfileScheme = uarch.RegfileScheme
	// RecoveryScheme selects the scheduling-replay policy.
	RecoveryScheme = uarch.RecoveryScheme
	// OperandPredictor selects the last-arriving operand predictor.
	OperandPredictor = uarch.OperandPredictor
	// Profile parameterises a synthetic workload.
	Profile = trace.Profile
	// Stream produces dynamic instructions for the pipeline.
	Stream = trace.Stream
	// Options configures the experiment harness (instruction budget,
	// benchmark subset, worker-pool size, progress observer).
	Options = experiments.Options
	// Runner executes experiments over a bounded worker pool with
	// memoised, deduplicated simulations.
	Runner = experiments.Runner
	// Observer receives per-simulation progress events from a Runner;
	// internal/progress provides the standard implementation behind the
	// commands' -quiet and -progress-json flags.
	Observer = experiments.Observer
	// Result is one reproduced table or figure.
	Result = experiments.Result
	// CycleClass labels one cycle of the CPI stack.
	CycleClass = uarch.CycleClass
	// Backend is the Runner's execution seam: nil Options.Backend means
	// in-process simulation; internal/dist's Coordinator implements the
	// same interface over a fleet of sweepd workers (the commands'
	// -workers flag).
	Backend = experiments.Backend
	// Request is one serialized simulation request — the unit of work a
	// Backend executes, and the wire format of the sweepd worker API.
	Request = experiments.Request
	// ResultStore is the durable on-disk result tier behind the
	// commands' -cache-dir/-no-cache flags (Options.Store): completed
	// simulations checkpoint to disk and a restarted sweep resumes from
	// there instead of recomputing.
	ResultStore = store.Store
)

// NumCycleClasses is the number of CPI-stack categories.
const NumCycleClasses = uarch.NumCycleClasses

// Scheme constants, re-exported from internal/uarch.
const (
	WakeupConventional = uarch.WakeupConventional
	WakeupSequential   = uarch.WakeupSequential
	WakeupTagElim      = uarch.WakeupTagElim

	RFTwoPort      = uarch.RFTwoPort
	RFSequential   = uarch.RFSequential
	RFExtraStage   = uarch.RFExtraStage
	RFHalfCrossbar = uarch.RFHalfCrossbar

	RecoveryNonSelective = uarch.RecoveryNonSelective
	RecoverySelective    = uarch.RecoverySelective

	OpPredBimodal     = uarch.OpPredBimodal
	OpPredStaticRight = uarch.OpPredStaticRight
)

// Config4Wide returns the paper's 4-wide machine (Table 1).
func Config4Wide() Config { return uarch.Config4Wide() }

// Config8Wide returns the paper's 8-wide machine (Table 1).
func Config8Wide() Config { return uarch.Config8Wide() }

// Benchmarks lists the SPEC CINT2000 benchmark names of Table 2.
func Benchmarks() []string {
	return append([]string(nil), trace.BenchmarkNames...)
}

// BenchmarkProfile returns the calibrated synthetic profile for one
// benchmark, which callers may tweak and pass to SimulateProfile.
func BenchmarkProfile(name string) (Profile, error) {
	p, ok := trace.ProfileByName(name)
	if !ok {
		return Profile{}, fmt.Errorf("halfprice: unknown benchmark %q", name)
	}
	return p, nil
}

// Simulate runs the named benchmark's calibrated synthetic workload for
// insts dynamic instructions on cfg and returns the measurements. It
// returns an error on unknown benchmark names; MustSimulate panics
// instead, for examples and tests with hard-coded names.
func Simulate(cfg Config, benchmark string, insts uint64) (*Stats, error) {
	p, ok := trace.ProfileByName(benchmark)
	if !ok {
		return nil, fmt.Errorf("halfprice: unknown benchmark %q", benchmark)
	}
	return uarch.New(cfg, trace.NewSynthetic(p, insts)).Run(), nil
}

// MustSimulate is Simulate but panics on error. It is intended for
// examples, tests and other contexts where the benchmark name is a
// literal from Benchmarks.
func MustSimulate(cfg Config, benchmark string, insts uint64) *Stats {
	st, err := Simulate(cfg, benchmark, insts)
	if err != nil {
		panic(err)
	}
	return st
}

// SimulateProfile runs a custom synthetic workload profile.
func SimulateProfile(cfg Config, p Profile, insts uint64) *Stats {
	return uarch.New(cfg, trace.NewSynthetic(p, insts)).Run()
}

// SimulateKernel runs one of the hand-written execution-driven assembly
// kernels (same names as Benchmarks) through the functional simulator and
// the timing pipeline. maxInsts of 0 runs the kernel to completion.
func SimulateKernel(cfg Config, name string, maxInsts uint64) *Stats {
	m := vm.New(workloads.MustProgram(name))
	return uarch.New(cfg, trace.NewVMStream(m, maxInsts)).Run()
}

// SimulateProgram assembles HPA64 source, executes it functionally and
// replays it on the timing pipeline. maxInsts of 0 runs to HALT.
func SimulateProgram(cfg Config, source string, maxInsts uint64) (*Stats, error) {
	prog, err := asm.Assemble(source)
	if err != nil {
		return nil, err
	}
	m := vm.New(prog)
	stream := trace.NewVMStream(m, maxInsts)
	st := uarch.New(cfg, stream).Run()
	if err := stream.Err(); err != nil {
		return st, fmt.Errorf("halfprice: program trapped: %w", err)
	}
	return st, nil
}

// RecordTrace assembles and executes HPA64 source, writing the dynamic
// instruction stream as a binary trace to w (replayable with
// SimulateTrace). maxInsts of 0 records to HALT.
func RecordTrace(w io.Writer, source string, maxInsts uint64) (uint64, error) {
	prog, err := asm.Assemble(source)
	if err != nil {
		return 0, err
	}
	stream := trace.NewVMStream(vm.New(prog), maxInsts)
	n, err := trace.WriteFile(w, stream)
	if err != nil {
		return n, err
	}
	return n, stream.Err()
}

// SimulateTrace replays a recorded binary trace on cfg.
func SimulateTrace(cfg Config, r io.Reader) (*Stats, error) {
	fs, err := trace.OpenFile(r)
	if err != nil {
		return nil, err
	}
	st := uarch.New(cfg, fs).Run()
	return st, fs.Err()
}

// RenderPipeline assembles and runs HPA64 source, returning a pipeview
// chart of the first n instructions (F fetch, D dispatch, I issue,
// E complete, C commit, x squash).
func RenderPipeline(cfg Config, source string, n int) (string, error) {
	prog, err := asm.Assemble(source)
	if err != nil {
		return "", err
	}
	sim := uarch.New(cfg, trace.NewVMStream(vm.New(prog), 0))
	pv := uarch.NewPipeview(n)
	sim.SetTracer(pv)
	sim.Run()
	var b strings.Builder
	if err := pv.Render(&b); err != nil {
		return "", err
	}
	return b.String(), nil
}

// WriteProfile serialises a workload profile as JSON (editable and
// reloadable with ReadProfile).
func WriteProfile(w io.Writer, p Profile) error { return trace.MarshalProfile(w, p) }

// ReadProfile loads and validates a workload profile from JSON.
func ReadProfile(r io.Reader) (Profile, error) { return trace.UnmarshalProfile(r) }

// SimulateHot runs a benchmark with per-PC hot-spot profiling and returns
// the statistics plus a rendered report of the topN hottest static
// instructions per event class (commits, squashes, sequential register
// accesses, slow-bus delays).
func SimulateHot(cfg Config, benchmark string, insts uint64, kernel bool, topN int) (*Stats, string, error) {
	var stream Stream
	if kernel {
		stream = trace.NewVMStream(vm.New(workloads.MustProgram(benchmark)), insts)
	} else {
		p, ok := trace.ProfileByName(benchmark)
		if !ok {
			return nil, "", fmt.Errorf("halfprice: unknown benchmark %q", benchmark)
		}
		stream = trace.NewSynthetic(p, insts)
	}
	sim := uarch.New(cfg, stream)
	hot := sim.EnableHotSpots()
	st := sim.Run()
	var b strings.Builder
	if err := hot.Report(&b, topN); err != nil {
		return st, "", err
	}
	return st, b.String(), nil
}

// NewRunner returns an experiment runner for reproducing the paper's
// tables and figures. Independent (benchmark, config) simulations fan
// out over a bounded worker pool (Options.Parallel, the commands' -j
// flag) with singleflight-deduplicated memoisation, so a configuration
// shared by several experiments simulates exactly once and results are
// bit-identical at every pool size.
func NewRunner(opts Options) *Runner { return experiments.NewRunner(opts) }

// ReproduceAll regenerates every table and figure of the paper's
// evaluation in order: Table 2, Figures 2/3/4/6, Table 3, Figures 7/10/
// 14/15/16, and the circuit timing claims.
func ReproduceAll(opts Options) []*Result {
	return experiments.NewRunner(opts).All()
}

// SchedulerDelayPs returns the modelled wakeup+select critical-loop delay
// in picoseconds for a scheduler with the given geometry, conventional
// (two comparators per entry) or sequential-wakeup (one).
func SchedulerDelayPs(entries, width int, sequential bool) float64 {
	if sequential {
		return timing.SequentialWakeupScheduler(entries, width).Delay()
	}
	return timing.ConventionalScheduler(entries, width).Delay()
}

// RegfileAccessNs returns the modelled register-file access time in
// nanoseconds for the conventional (2 read ports per slot) or half-price
// (1 read port per slot) organisation.
func RegfileAccessNs(entries, width int, halfPorts bool) float64 {
	if halfPorts {
		return timing.HalfPriceRegfile(entries, width).AccessTime()
	}
	return timing.BaseRegfile(entries, width).AccessTime()
}
