// Command hpserve is the simulation-as-a-service daemon: a
// long-running multi-tenant HTTP front end over the experiment engine
// (internal/serve). Tenants submit simulation jobs over REST, watch
// their progress as live NDJSON event streams, and fetch results; the
// server owns a disk-journaled priority queue (killing and restarting
// it resumes queued work), per-tenant quotas with fair-share
// scheduling, admission control that 429s with Retry-After under
// overload, and a shared cross-tenant result CDN backed by the
// internal/store cache — an identical config submitted by any tenant
// is served in microseconds without a fleet dispatch.
//
// Usage:
//
//	hpserve [flags]
//
//	-addr host:port   listen address (default localhost:9780)
//	-state-dir dir    job-journal directory (default ~/.cache equivalent)
//	-cache-dir dir    shared result store; "" = default, with -no-cache off
//	-no-cache         disable the result store
//	-j n              concurrently dispatched jobs (default 2)
//	-max-queue n      queued-job bound before 429 (default 256)
//	-tenant-quota n   per-tenant queued-job bound (default 32)
//	-max-insts n      per-job instruction-budget cap (default 5000000)
//	-history n        terminal jobs retained in the journal (default 1024)
//	-tenants f        tenants file, one "name:token" per line; empty =
//	                  open mode (every request is tenant "anonymous")
//	-quiet            suppress operational logging
//
// Plus the shared fleet flags (-workers, -registry, -worker-timeout,
// -token, -tls-ca, -health-interval, -hedge, -hedge-after): with a
// fleet configured, jobs dispatch to sweepd workers through the dist
// coordinator and the fleet's probe-cached load telemetry feeds
// admission control and /v1/stats; without one, jobs simulate
// in-process. Unlike the batch sweep commands, hpserve turns -hedge on
// by default — interactive tenants feel tail latency, and the
// coordinator keeps hedged runs exactly-once.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"halfprice/internal/dist"
	"halfprice/internal/serve"
	"halfprice/internal/store"
)

func main() {
	addr := flag.String("addr", "localhost:9780", "listen address (host:port)")
	stateDir := flag.String("state-dir", defaultStateDir(), "directory for the persistent job journal")
	cacheDir := flag.String("cache-dir", store.DefaultDir(), "shared result-store directory (the cross-tenant result CDN)")
	noCache := flag.Bool("no-cache", false, "disable the result store")
	workers := flag.Int("j", 0, "concurrently dispatched jobs (0 = default 2)")
	maxQueue := flag.Int("max-queue", 0, "queued-job bound before submits are rejected with 429 (0 = default 256)")
	tenantQuota := flag.Int("tenant-quota", 0, "per-tenant queued-job bound (0 = default 32)")
	maxInsts := flag.Uint64("max-insts", 0, "per-job instruction-budget cap (0 = default 5000000)")
	history := flag.Int("history", 0, "terminal jobs retained in the journal across restarts (0 = default 1024)")
	tenantsFile := flag.String("tenants", "", `tenants file, one "name:token" per line; empty = open mode`)
	quiet := flag.Bool("quiet", false, "suppress operational logging")
	fleet := dist.AddFlags()
	// hpserve fronts interactive tenants, so hedged dispatch defaults on
	// here (batch sweep commands keep it opt-in: their equivalence
	// checks count raw dispatches). -hedge=false restores single-shot
	// dispatch.
	flag.Set("hedge", "true")
	if fl := flag.Lookup("hedge"); fl != nil {
		fl.DefValue = "true"
	}
	flag.Parse()

	logf := log.New(os.Stderr, "", log.LstdFlags).Printf
	if *quiet {
		logf = func(string, ...any) {}
	}

	var tenants map[string]string
	if *tenantsFile != "" {
		var err error
		tenants, err = serve.LoadTenants(*tenantsFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hpserve:", err)
			os.Exit(1)
		}
		logf("hpserve: %d tenant(s) loaded from %s", len(tenants), *tenantsFile)
	} else {
		logf("hpserve: no -tenants file; running in open mode")
	}

	st := store.FromFlags(*cacheDir, *noCache)
	if st == nil {
		logf("hpserve: result store disabled; every job will dispatch")
	}

	opts := serve.Options{
		Dir:         *stateDir,
		Store:       st,
		Workers:     *workers,
		MaxQueue:    *maxQueue,
		TenantQuota: *tenantQuota,
		MaxInsts:    *maxInsts,
		HistoryCap:  *history,
		Tenants:     tenants,
		Logf:        logf,
	}
	// The coordinator gets no store of its own: the serve layer already
	// wraps every dispatch in the store, so wiring it twice would
	// double-check the cache on each run.
	coord, closeCoord, err := fleet.Coordinator(nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hpserve:", err)
		os.Exit(1)
	}
	defer closeCoord()
	if coord != nil {
		opts.Backend = coord
		opts.FleetStats = coord.FleetLoad
		logf("hpserve: dispatching to the sweepd fleet (%d worker(s) healthy)", coord.HealthyWorkers())
	} else {
		logf("hpserve: no fleet configured; simulating in-process")
	}

	srv, err := serve.New(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hpserve:", err)
		os.Exit(1)
	}
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	// First signal: stop accepting requests, let in-flight dispatches
	// finish, close the journal. Second signal: exit now. Queued jobs
	// stay journaled and resume on the next start.
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigs
		logf("hpserve: signal received; shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		go func() {
			<-sigs
			logf("hpserve: second signal; exiting immediately")
			cancel()
		}()
		httpSrv.Shutdown(ctx)
	}()

	logf("hpserve: serving on %s (state %s)", *addr, *stateDir)
	if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fmt.Fprintln(os.Stderr, "hpserve:", err)
		os.Exit(1)
	}
	if err := srv.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "hpserve:", err)
		os.Exit(1)
	}
	logf("hpserve: shut down cleanly")
}

// defaultStateDir is the journal home when -state-dir is not given:
// next to the default result store under the user cache dir.
func defaultStateDir() string {
	base, err := os.UserCacheDir()
	if err != nil {
		return "hpserve-state"
	}
	return filepath.Join(base, "halfprice", "hpserve")
}
