// Command halfprice runs one simulation of the half-price architecture
// and prints its measurements.
//
// Usage:
//
//	halfprice [flags]
//
//	-bench name     benchmark (bzip..vpr; default gzip)
//	-width n        machine width: 4 or 8 (default 4)
//	-insts n        dynamic instructions to simulate (default 500000)
//	-wakeup s       conventional | sequential | tagelim
//	-regfile s      2port | sequential | extrastage | crossbar
//	-recovery s     nonselective | selective
//	-pred s         bimodal | static
//	-pred-entries n operand predictor entries (power of two, default 1024)
//	-kernel         run the execution-driven assembly kernel instead of
//	                the calibrated synthetic trace
//	-list           list benchmarks and exit
//	-quiet          suppress the progress summary on stderr
//	-progress-json f  write NDJSON progress events to f ("-" = stderr)
//	-workers list     comma-separated sweepd worker addresses; the run is
//	                  dispatched to the fleet (local fallback when none is
//	                  reachable). -hot and -profile always run locally.
//	-registry f       worker registry (file or http(s) endpoint)
//	-worker-timeout d per-request timeout against remote workers
//	-token s          shared auth token presented to workers
//	                  (default $HALFPRICE_TOKEN)
//	-tls-ca f         CA certificate(s) to trust for https:// workers
//	-health-interval d fleet health-probe and registry re-read period
//	-cache-dir d      durable result store: a previous identical run (by
//	                  any command) is served from disk as a cache hit.
//	                  -hot and -profile runs are never cached.
//	-no-cache         bypass the durable result store
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"halfprice"
	"halfprice/internal/dist"
	"halfprice/internal/experiments"
	"halfprice/internal/progress"
	"halfprice/internal/store"
)

func main() {
	bench := flag.String("bench", "gzip", "benchmark name")
	width := flag.Int("width", 4, "machine width (4 or 8)")
	insts := flag.Uint64("insts", 500000, "dynamic instructions to simulate")
	wakeup := flag.String("wakeup", "conventional", "wakeup scheme: conventional|sequential|tagelim")
	regfile := flag.String("regfile", "2port", "register file: 2port|sequential|extrastage|crossbar")
	recovery := flag.String("recovery", "nonselective", "replay: nonselective|selective")
	pred := flag.String("pred", "bimodal", "operand predictor: bimodal|static")
	predEntries := flag.Int("pred-entries", 1024, "operand predictor entries")
	kernel := flag.Bool("kernel", false, "run the execution-driven assembly kernel")
	list := flag.Bool("list", false, "list benchmarks and exit")
	hot := flag.Int("hot", 0, "print the N hottest PCs per event class")
	warmup := flag.Uint64("warmup", 0, "instructions to warm up before measuring")
	profilePath := flag.String("profile", "", "run a custom workload profile from a JSON file")
	dumpProfile := flag.String("dump-profile", "", "print the named benchmark's profile as JSON and exit")
	quiet := flag.Bool("quiet", false, "suppress progress output")
	progressJSON := flag.String("progress-json", "", "write NDJSON progress events to this file (\"-\" = stderr)")
	dflags := dist.AddFlags()
	cacheDir := flag.String("cache-dir", store.DefaultDir(), "durable result-store directory (empty disables caching)")
	noCache := flag.Bool("no-cache", false, "bypass the durable result store")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(halfprice.Benchmarks(), " "))
		return
	}
	if *dumpProfile != "" {
		p, err := halfprice.BenchmarkProfile(*dumpProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "halfprice:", err)
			os.Exit(2)
		}
		if err := halfprice.WriteProfile(os.Stdout, p); err != nil {
			fmt.Fprintln(os.Stderr, "halfprice:", err)
			os.Exit(1)
		}
		return
	}

	tracker, closeProgress, err := progress.FromFlags(*quiet, *progressJSON)
	if err != nil {
		fmt.Fprintln(os.Stderr, "halfprice:", err)
		os.Exit(2)
	}
	defer closeProgress()

	cfg, err := buildConfig(*width, *wakeup, *regfile, *recovery, *pred, *predEntries)
	if err != nil {
		fmt.Fprintln(os.Stderr, "halfprice:", err)
		os.Exit(2)
	}

	cfg.WarmupInsts = *warmup

	if *profilePath != "" {
		if dflags.Enabled() {
			fmt.Fprintln(os.Stderr, "halfprice: custom profiles simulate locally; ignoring -workers/-registry")
		}
		f, err := os.Open(*profilePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "halfprice:", err)
			os.Exit(2)
		}
		p, err := halfprice.ReadProfile(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "halfprice:", err)
			os.Exit(2)
		}
		st := observe(tracker, p.Name, cfg, *insts+*warmup, func() *halfprice.Stats {
			return halfprice.SimulateProfile(cfg, p, *insts+*warmup)
		})
		printStats(p.Name, cfg, st)
		return
	}

	if _, err := halfprice.BenchmarkProfile(*bench); err != nil {
		fmt.Fprintln(os.Stderr, "halfprice:", err)
		os.Exit(2)
	}

	// Hot-spot runs bypass the result store: the Stats could be served
	// from disk, but the per-PC report they exist for cannot.
	cache := store.FromFlags(*cacheDir, *noCache)
	if *hot > 0 {
		cache = nil
	}

	if dflags.Enabled() && *hot == 0 {
		st := runDistributed(tracker, cache, cfg, *bench, *insts+*warmup, *kernel, dflags)
		printStats(*bench, cfg, st)
		return
	}
	if dflags.Enabled() {
		fmt.Fprintln(os.Stderr, "halfprice: -hot profiles locally; ignoring -workers/-registry")
	}
	if cache != nil {
		printStats(*bench, cfg, runCached(tracker, cache, cfg, *bench, *insts+*warmup, *kernel))
		return
	}
	var hotReport string
	st := observe(tracker, *bench, cfg, *insts+*warmup, func() *halfprice.Stats {
		var st *halfprice.Stats
		st, hotReport = simulate(cfg, *bench, *insts+*warmup, *kernel, *hot)
		return st
	})
	printStats(*bench, cfg, st)
	if hotReport != "" {
		fmt.Print(hotReport)
	}
}

// runCached executes the single plain simulation through the durable
// result store: a previous identical run — by this command or any sweep
// sharing the cache directory — is served from disk as a cache hit, and
// a fresh run is checkpointed for the next one.
func runCached(tr *progress.Tracker, cache *store.Store, cfg halfprice.Config, bench string, budget uint64, kernel bool) *halfprice.Stats {
	req := experiments.Request{Bench: bench, Config: cfg, Budget: budget, UseKernels: kernel}
	var obs experiments.Observer
	if tr != nil {
		obs = tr
		tr.RunQueued(bench, req.Label(), budget)
	}
	st, cached, err := cache.GetOrCompute(req.Key(), func() (*halfprice.Stats, error) {
		return experiments.LocalBackend{}.Execute(context.Background(), req, obs)
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "halfprice:", err)
		os.Exit(1)
	}
	if cached {
		experiments.NotifyCached(obs, bench, req.Label(), budget)
	}
	return st
}

// runDistributed dispatches the single simulation to the sweepd fleet
// through the same coordinator backend the sweep commands use; the
// coordinator degrades to local execution when no worker is reachable
// and, when a result store is wired, serves and checkpoints results
// through it.
func runDistributed(tracker *progress.Tracker, cache *store.Store, cfg halfprice.Config, bench string, budget uint64, kernel bool, dflags *dist.Flags) *halfprice.Stats {
	coord, closeCoord, err := dflags.Coordinator(cache)
	if err != nil {
		fmt.Fprintln(os.Stderr, "halfprice:", err)
		os.Exit(2)
	}
	defer closeCoord()
	req := experiments.Request{Bench: bench, Config: cfg, Budget: budget, UseKernels: kernel}
	var obs experiments.Observer
	if tracker != nil {
		obs = tracker
		tracker.RunQueued(bench, req.Label(), budget)
	}
	st, err := coord.Execute(context.Background(), req, obs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "halfprice:", err)
		os.Exit(1)
	}
	return st
}

// observe wraps the command's one simulation in the same queued/start/
// finish progress events the sweep commands emit per run.
func observe(tr *progress.Tracker, bench string, cfg halfprice.Config, insts uint64, run func() *halfprice.Stats) *halfprice.Stats {
	if tr == nil {
		return run()
	}
	label := fmt.Sprintf("%dw %v/%v/%v", cfg.Width, cfg.Wakeup, cfg.Regfile, cfg.Recovery)
	tr.RunQueued(bench, label, insts)
	tr.RunStarted(bench, label, insts)
	st := run()
	tr.RunFinished(bench, label, insts)
	return st
}

// simulate runs the chosen workload, optionally with hot-spot profiling.
func simulate(cfg halfprice.Config, bench string, insts uint64, kernel bool, hotN int) (*halfprice.Stats, string) {
	if hotN <= 0 {
		if kernel {
			return halfprice.SimulateKernel(cfg, bench, insts), ""
		}
		st, err := halfprice.Simulate(cfg, bench, insts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "halfprice:", err)
			os.Exit(1)
		}
		return st, ""
	}
	st, report, err := halfprice.SimulateHot(cfg, bench, insts, kernel, hotN)
	if err != nil {
		fmt.Fprintln(os.Stderr, "halfprice:", err)
		os.Exit(1)
	}
	return st, report
}

func buildConfig(width int, wakeup, regfile, recovery, pred string, predEntries int) (halfprice.Config, error) {
	var cfg halfprice.Config
	switch width {
	case 4:
		cfg = halfprice.Config4Wide()
	case 8:
		cfg = halfprice.Config8Wide()
	default:
		return cfg, fmt.Errorf("width must be 4 or 8, got %d", width)
	}
	switch wakeup {
	case "conventional":
		cfg.Wakeup = halfprice.WakeupConventional
	case "sequential":
		cfg.Wakeup = halfprice.WakeupSequential
	case "tagelim":
		cfg.Wakeup = halfprice.WakeupTagElim
	default:
		return cfg, fmt.Errorf("unknown wakeup scheme %q", wakeup)
	}
	switch regfile {
	case "2port":
		cfg.Regfile = halfprice.RFTwoPort
	case "sequential":
		cfg.Regfile = halfprice.RFSequential
	case "extrastage":
		cfg.Regfile = halfprice.RFExtraStage
	case "crossbar":
		cfg.Regfile = halfprice.RFHalfCrossbar
	default:
		return cfg, fmt.Errorf("unknown register file scheme %q", regfile)
	}
	switch recovery {
	case "nonselective":
		cfg.Recovery = halfprice.RecoveryNonSelective
	case "selective":
		cfg.Recovery = halfprice.RecoverySelective
	default:
		return cfg, fmt.Errorf("unknown recovery scheme %q", recovery)
	}
	switch pred {
	case "bimodal":
		cfg.OpPred = halfprice.OpPredBimodal
	case "static":
		cfg.OpPred = halfprice.OpPredStaticRight
	default:
		return cfg, fmt.Errorf("unknown operand predictor %q", pred)
	}
	cfg.OpPredEntries = predEntries
	return cfg, nil
}

func printStats(bench string, cfg halfprice.Config, st *halfprice.Stats) {
	fmt.Printf("benchmark        %s\n", bench)
	fmt.Printf("machine          %d-wide, %d-entry window, wakeup=%v regfile=%v recovery=%v\n",
		cfg.Width, cfg.WindowSize, cfg.Wakeup, cfg.Regfile, cfg.Recovery)
	fmt.Printf("committed        %d instructions in %d cycles\n", st.Committed, st.Cycles)
	fmt.Printf("IPC              %.3f\n", st.IPC())
	fmt.Printf("2-source format  %.1f%%  (stores %.1f%%)\n", 100*st.Frac2SourceFormat(), 100*st.FracStores())
	fmt.Printf("2-source unique  %.1f%%\n", 100*st.Frac2Source())
	fmt.Printf("0-ready @insert  %.1f%% of 2-source\n", 100*st.FracTwoPending())
	fmt.Printf("simultaneous     %.1f%% of 2-pending\n", 100*st.FracSimultaneous())
	fmt.Printf("2-port need      %.1f%% of instructions\n", 100*st.FracTwoPortNeed())
	fmt.Printf("branch mispred   %.1f%%\n", 100*st.MispredictRate())
	if st.OpPredCorrect+st.OpPredIncorrect+st.OpPredSimultaneous > 0 {
		fmt.Printf("operand pred     %.1f%% correct\n", 100*st.OpPredAccuracy())
	}
	if st.SeqWakeupDelays > 0 {
		fmt.Printf("slow-bus delays  %d\n", st.SeqWakeupDelays)
	}
	if st.SeqRegAccesses > 0 {
		fmt.Printf("seq RF accesses  %d\n", st.SeqRegAccesses)
	}
	if st.TagElimMispreds > 0 {
		fmt.Printf("tag-elim faults  %d (%d squashes)\n", st.TagElimMispreds, st.TagElimSquashes)
	}
	fmt.Printf("replay squashes  %d\n", st.ReplaySquashes)
	fmt.Printf("cycle breakdown  ")
	for c := halfprice.CycleClass(0); int(c) < halfprice.NumCycleClasses; c++ {
		fmt.Printf("%s %.0f%%  ", c, 100*st.CycleFrac(c))
	}
	fmt.Println()
}
