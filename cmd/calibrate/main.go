// Command calibrate prints the workload-calibration dashboard: every
// synthetic profile's measured behaviour next to the paper's reference
// values, with deviations. Use it after editing
// internal/trace/profiles.go to re-fit a benchmark.
//
// Usage:
//
//	calibrate [-insts n] [-bench list]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"halfprice"
	"halfprice/internal/experiments"
	"halfprice/internal/trace"
)

func main() {
	insts := flag.Uint64("insts", 300000, "instructions per run")
	benchList := flag.String("bench", "", "comma-separated benchmark subset")
	flag.Parse()

	opts := halfprice.Options{Insts: *insts}
	benches := halfprice.Benchmarks()
	if *benchList != "" {
		benches = strings.Split(*benchList, ",")
		opts.Benchmarks = benches
	}
	r := experiments.NewRunner(opts)

	fmt.Printf("%-8s %18s %18s %7s %7s %7s %7s %7s %7s\n",
		"bench", "IPC4 (paper,dev)", "IPC8 (paper,dev)", "mispr", "2srcF", "2src", "0rdy", "simult", "same")
	for _, b := range benches {
		paper, ok := trace.BaseIPCPaper[b]
		if !ok {
			fmt.Fprintf(os.Stderr, "calibrate: unknown benchmark %q\n", b)
			os.Exit(2)
		}
		s4 := r.Base(b, 4)
		s8 := r.Base(b, 8)
		fmt.Printf("%-8s %5.2f (%4.2f,%+4.0f%%) %5.2f (%4.2f,%+4.0f%%) %6.1f%% %6.1f%% %6.1f%% %6.1f%% %6.1f%% %6.1f%%\n",
			b,
			s4.IPC(), paper[0], 100*(s4.IPC()-paper[0])/paper[0],
			s8.IPC(), paper[1], 100*(s8.IPC()-paper[1])/paper[1],
			100*s4.MispredictRate(),
			100*s4.Frac2SourceFormat(),
			100*s4.Frac2Source(),
			100*s4.FracTwoPending(),
			100*s4.FracSimultaneous(),
			100*s4.OrderSameFrac())
	}
	fmt.Println()
	fmt.Println("paper bands: 2srcF 18-36%, 2src 6-23%, 0rdy 4-16%, simult <3%, same 81-98%")
}
