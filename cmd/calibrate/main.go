// Command calibrate prints the workload-calibration dashboard: every
// synthetic profile's measured behaviour next to the paper's reference
// values, with deviations. Use it after editing
// internal/trace/profiles.go to re-fit a benchmark.
//
// Usage:
//
//	calibrate [-insts n] [-bench list] [-j n] [-quiet] [-progress-json f]
//	          [-workers host1:port,host2:port] [-registry f]
//	          [-worker-timeout d] [-token s] [-tls-ca f]
//	          [-health-interval d] [-cache-dir d] [-no-cache]
//
// The 24 base simulations (12 benchmarks x 2 widths) fan out over a
// bounded worker pool before the dashboard renders serially from the
// memo cache.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"halfprice"
	"halfprice/internal/dist"
	"halfprice/internal/experiments"
	"halfprice/internal/progress"
	"halfprice/internal/store"
	"halfprice/internal/trace"
)

func main() {
	insts := flag.Uint64("insts", 300000, "instructions per run")
	benchList := flag.String("bench", "", "comma-separated benchmark subset")
	par := flag.Int("j", runtime.GOMAXPROCS(0), "max concurrent simulations (1 = serial)")
	quiet := flag.Bool("quiet", false, "suppress progress output")
	progressJSON := flag.String("progress-json", "", "write NDJSON progress events to this file (\"-\" = stderr)")
	dflags := dist.AddFlags()
	cacheDir := flag.String("cache-dir", store.DefaultDir(), "durable result-store directory (empty disables caching)")
	noCache := flag.Bool("no-cache", false, "bypass the durable result store")
	flag.Parse()

	opts := halfprice.Options{Insts: *insts, Parallel: *par}
	opts.Store = store.FromFlags(*cacheDir, *noCache)
	coord, closeCoord, derr := dflags.Coordinator(nil)
	if derr != nil {
		fmt.Fprintln(os.Stderr, "calibrate:", derr)
		os.Exit(2)
	}
	defer closeCoord()
	if coord != nil {
		opts.Backend = coord
	}
	benches := halfprice.Benchmarks()
	if *benchList != "" {
		benches = strings.Split(*benchList, ",")
		opts.Benchmarks = benches
	}
	tracker, closeProgress, err := progress.FromFlags(*quiet, *progressJSON)
	if err != nil {
		fmt.Fprintln(os.Stderr, "calibrate:", err)
		os.Exit(2)
	}
	defer closeProgress()
	if tracker != nil {
		opts.Observer = tracker
	}
	r := experiments.NewRunner(opts)
	r.Warm(4, 8)

	fmt.Printf("%-8s %18s %18s %7s %7s %7s %7s %7s %7s\n",
		"bench", "IPC4 (paper,dev)", "IPC8 (paper,dev)", "mispr", "2srcF", "2src", "0rdy", "simult", "same")
	for _, b := range benches {
		paper, ok := trace.BaseIPCPaper[b]
		if !ok {
			fmt.Fprintf(os.Stderr, "calibrate: unknown benchmark %q\n", b)
			os.Exit(2)
		}
		s4 := r.Base(b, 4)
		s8 := r.Base(b, 8)
		fmt.Printf("%-8s %5.2f (%4.2f,%+4.0f%%) %5.2f (%4.2f,%+4.0f%%) %6.1f%% %6.1f%% %6.1f%% %6.1f%% %6.1f%% %6.1f%%\n",
			b,
			s4.IPC(), paper[0], 100*(s4.IPC()-paper[0])/paper[0],
			s8.IPC(), paper[1], 100*(s8.IPC()-paper[1])/paper[1],
			100*s4.MispredictRate(),
			100*s4.Frac2SourceFormat(),
			100*s4.Frac2Source(),
			100*s4.FracTwoPending(),
			100*s4.FracSimultaneous(),
			100*s4.OrderSameFrac())
	}
	fmt.Println()
	fmt.Println("paper bands: 2srcF 18-36%, 2src 6-23%, 0rdy 4-16%, simult <3%, same 81-98%")
}
