// Command bench runs the pinned benchmark matrix through the cycle-level
// simulator and emits a BENCH_<n>.json perf-trajectory report (schema in
// internal/benchfmt, documented in PERF.md and README.md §Benchmarking).
//
// Typical uses:
//
//	go run ./cmd/bench -id 8 -baseline BENCH_7.json -out BENCH_8.json
//	go run ./cmd/bench -insts 5000 -repeats 1 -benchmarks gzip -widths 4 \
//	    -schemes base,halfprice -out /tmp/bench.json   # CI bench-smoke
//	go run ./cmd/bench -check BENCH_7.json             # validate a report
//
// The default matrix (no flags) is benchfmt.DefaultMatrix: four
// workloads × both Table 1 widths × four scheduler schemes, 50k
// instructions per run, three timed repeats per cell. Reports measured
// on different matrices refuse to compare, so a trajectory stays
// apples-to-apples.
//
// With -baseline omitted, the newest committed BENCH_<n>.json in the
// working directory is used automatically (skipped with a warning when
// its matrix differs, e.g. a smoke-sized run vs the full trajectory);
// -baseline none disables the diff. An explicit -baseline that does
// not compare is still fatal.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"halfprice/internal/benchfmt"
)

func main() {
	def := benchfmt.DefaultMatrix()
	var (
		insts      = flag.Uint64("insts", def.InstsPerRun, "simulated instructions per run")
		repeats    = flag.Int("repeats", def.Repeats, "timed runs per matrix cell")
		benchmarks = flag.String("benchmarks", strings.Join(def.Benchmarks, ","), "comma-separated workload names")
		widths     = flag.String("widths", joinInts(def.Widths), "comma-separated machine widths (4, 8)")
		schemes    = flag.String("schemes", strings.Join(def.Schemes, ","), "comma-separated schemes (base,halfprice,tagelim,pipelined-rf)")
		id         = flag.Int("id", 0, "bench_id to stamp into the report (the <n> of BENCH_<n>.json)")
		out        = flag.String("out", "", "output path (default stdout)")
		baseline   = flag.String("baseline", "", "previous BENCH_<n>.json to diff against (default: the newest committed BENCH_<n>.json; \"none\" disables)")
		check      = flag.String("check", "", "validate an existing report instead of measuring")
		quiet      = flag.Bool("quiet", false, "suppress per-cell progress on stderr")
	)
	flag.Parse()

	if *check != "" {
		if err := checkReport(*check); err != nil {
			fatal(err)
		}
		fmt.Printf("%s: schema v%d ok\n", *check, benchfmt.SchemaVersion)
		return
	}

	m := benchfmt.Matrix{
		InstsPerRun: *insts,
		Repeats:     *repeats,
		Benchmarks:  splitList(*benchmarks),
		Schemes:     splitList(*schemes),
	}
	var err error
	if m.Widths, err = parseInts(*widths); err != nil {
		fatal(err)
	}

	if !*quiet {
		fmt.Fprintf(os.Stderr, "bench: %d cells × %d repeats × %d insts\n",
			len(m.Benchmarks)*len(m.Widths)*len(m.Schemes), m.Repeats, m.InstsPerRun)
	}
	rep, err := benchfmt.Measure(m)
	if err != nil {
		fatal(err)
	}
	rep.BenchID = *id

	// Baseline selection: an explicit -baseline must apply (a mismatch
	// is fatal — the user asked for that comparison). With the flag
	// omitted, diff against the newest committed BENCH_<n>.json so
	// `make bench` always reports deltas against the last trajectory
	// point; auto mode warns and skips when the matrices differ (a
	// smoke-sized matrix cannot compare against the full one) instead
	// of failing the run. -baseline none disables the diff entirely.
	switch *baseline {
	case "none":
	case "":
		if path := newestCommittedReport(*out); path != "" {
			prev, err := readReport(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "bench: skipping auto-baseline: %v\n", err)
				break
			}
			if err := rep.ApplyBaseline(prev); err != nil {
				fmt.Fprintf(os.Stderr, "bench: skipping auto-baseline %s: %v\n", path, err)
				break
			}
			if !*quiet {
				fmt.Fprintf(os.Stderr, "bench: auto-baseline %s\n", path)
			}
		}
	default:
		prev, err := readReport(*baseline)
		if err != nil {
			fatal(err)
		}
		if err := rep.ApplyBaseline(prev); err != nil {
			fatal(err)
		}
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := benchfmt.Write(w, rep); err != nil {
		fatal(err)
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "bench: %.0f insts/sec geomean, %.0f ns/cycle geomean, %.0f allocs/op mean\n",
			rep.Summary.InstsPerSecGeomean, rep.Summary.NsPerCycleGeomean, rep.Summary.AllocsPerOpMean)
		if rep.Delta != nil {
			fmt.Fprintf(os.Stderr, "bench: vs BENCH_%d: %.2fx insts/sec, %.2fx fewer allocs/op\n",
				rep.Delta.BaselineBenchID, rep.Delta.InstsPerSecSpeedup, rep.Delta.AllocsPerOpImprovement)
		}
	}
}

// newestCommittedReport picks the auto-baseline: the highest-numbered
// BENCH_<n>.json in the working directory, excluding the report being
// written right now (re-running with the same -out must not diff a
// report against its own previous bytes).
func newestCommittedReport(out string) string {
	paths := benchfmt.CommittedReportPaths(".")
	for i := len(paths) - 1; i >= 0; i-- {
		if out != "" && sameFile(paths[i], out) {
			continue
		}
		return paths[i]
	}
	return ""
}

// sameFile reports whether two paths name the same file, tolerating
// spelling differences like "./BENCH_8.json" vs "BENCH_8.json".
func sameFile(a, b string) bool {
	ai, err1 := os.Stat(a)
	bi, err2 := os.Stat(b)
	if err1 == nil && err2 == nil {
		return os.SameFile(ai, bi)
	}
	return filepath.Clean(a) == filepath.Clean(b)
}

func checkReport(path string) error {
	_, err := readReport(path)
	return err
}

func readReport(path string) (*benchfmt.Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r, err := benchfmt.Read(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, f := range splitList(s) {
		n, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("bad width %q: %w", f, err)
		}
		out = append(out, n)
	}
	return out, nil
}

func joinInts(ns []int) string {
	parts := make([]string, len(ns))
	for i, n := range ns {
		parts[i] = strconv.Itoa(n)
	}
	return strings.Join(parts, ",")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench:", err)
	os.Exit(1)
}
