// Command hpvet runs the repository's static-analysis suite
// (internal/analysis) over the module containing the working directory
// and exits non-zero on findings. It is wired into CI next to go vet.
//
// Usage:
//
//	go run ./cmd/hpvet [-root dir] [-only a,b] [-json] [-list]
//
// Findings print as file:line:col: analyzer: message, with paths
// relative to the module root. Suppress a finding with an
// //hp:nolint analyzer -- reason comment on or above its line.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"halfprice/internal/analysis"
)

func main() {
	var (
		root     = flag.String("root", "", "module root to analyze (default: nearest go.mod above the working directory)")
		only     = flag.String("only", "", "comma-separated analyzer names to run (default: all)")
		jsonOut  = flag.Bool("json", false, "emit findings as a JSON array")
		listOnly = flag.Bool("list", false, "list analyzers and exit")
	)
	flag.Parse()

	if *listOnly {
		for _, a := range analysis.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := analysis.All()
	if *only != "" {
		var err error
		analyzers, err = analysis.Select(strings.Split(*only, ","))
		if err != nil {
			fatal(err)
		}
	}

	dir := *root
	if dir == "" {
		var err error
		dir, err = findModuleRoot()
		if err != nil {
			fatal(err)
		}
	}
	mod, err := analysis.LoadModule(dir)
	if err != nil {
		fatal(err)
	}
	diags := analysis.Run(mod, analyzers)

	if *jsonOut {
		type finding struct {
			Analyzer string `json:"analyzer"`
			File     string `json:"file"`
			Line     int    `json:"line"`
			Col      int    `json:"col"`
			Message  string `json:"message"`
		}
		out := make([]finding, 0, len(diags))
		for _, d := range diags {
			file := d.Pos.Filename
			if rel, err := filepath.Rel(mod.Root, file); err == nil && !strings.HasPrefix(rel, "..") {
				file = filepath.ToSlash(rel)
			}
			out = append(out, finding{d.Analyzer, file, d.Pos.Line, d.Pos.Column, d.Message})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d.String(mod.Root))
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "hpvet: %d finding(s)\n", len(diags))
		}
		os.Exit(1)
	}
}

// findModuleRoot walks upward from the working directory to the nearest
// directory containing go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("hpvet: no go.mod found above the working directory")
		}
		dir = parent
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hpvet:", err)
	os.Exit(2)
}
