// Command hpvet runs the repository's static-analysis suite
// (internal/analysis) over the module containing the working directory
// and exits non-zero on findings. It is wired into CI next to go vet.
//
// Usage:
//
//	go run ./cmd/hpvet [-root dir] [-only a,b] [-format text|json|github] [-list]
//	go run ./cmd/hpvet [-root dir] -write-cpistack-test
//
// Findings print as file:line:col: analyzer: message, with paths
// relative to the module root. -format=json emits them as a JSON array
// (-json is a shorthand); -format=github emits GitHub Actions workflow
// commands (::error file=...,line=...,col=...::message) so CI findings
// surface as inline annotations on the pull request. Suppress a finding
// with an //hp:nolint analyzer -- reason comment on or above its line;
// markers that no longer suppress anything are themselves reported as
// stale (analyzer name "nolint"), so suppressions cannot outlive the
// code they excused.
//
// -write-cpistack-test regenerates the CPI-stack balance test
// (internal/uarch/cpistack_balance_gen_test.go), the runtime half of
// the cycleacct analyzer's invariant; make generate wraps it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"halfprice/internal/analysis"
)

func main() {
	var (
		root     = flag.String("root", "", "module root to analyze (default: nearest go.mod above the working directory)")
		only     = flag.String("only", "", "comma-separated analyzer names to run (default: all)")
		jsonOut  = flag.Bool("json", false, "emit findings as a JSON array (same as -format=json)")
		format   = flag.String("format", "text", "output format: text, json, or github (Actions annotations)")
		listOnly = flag.Bool("list", false, "list analyzers and exit")
		genCPI   = flag.Bool("write-cpistack-test", false, "regenerate "+analysis.CPIStackTestFile+" and exit")
	)
	flag.Parse()
	if *jsonOut {
		*format = "json"
	}
	switch *format {
	case "text", "json", "github":
	default:
		fatal(fmt.Errorf("unknown -format %q (want text, json or github)", *format))
	}

	if *listOnly {
		for _, a := range analysis.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := analysis.All()
	if *only != "" {
		var err error
		analyzers, err = analysis.Select(strings.Split(*only, ","))
		if err != nil {
			fatal(err)
		}
	}

	dir := *root
	if dir == "" {
		var err error
		dir, err = findModuleRoot()
		if err != nil {
			fatal(err)
		}
	}
	mod, err := analysis.LoadModule(dir)
	if err != nil {
		fatal(err)
	}
	if *genCPI {
		src, err := analysis.CPIStackTestSource(mod)
		if err != nil {
			fatal(err)
		}
		path := filepath.Join(mod.Root, filepath.FromSlash(analysis.CPIStackTestFile))
		if err := os.WriteFile(path, src, 0o644); err != nil {
			fatal(err)
		}
		fmt.Println("hpvet: wrote", analysis.CPIStackTestFile)
		return
	}
	diags := analysis.RunWithStale(mod, analyzers)

	switch *format {
	case "json":
		data, err := renderJSON(mod.Root, diags)
		if err != nil {
			fatal(err)
		}
		os.Stdout.Write(append(data, '\n'))
	case "github":
		for _, d := range diags {
			fmt.Println(githubAnnotation(relFile(mod.Root, d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message))
		}
	default:
		for _, d := range diags {
			fmt.Println(d.String(mod.Root))
		}
	}
	if len(diags) > 0 {
		if *format == "text" {
			fmt.Fprintf(os.Stderr, "hpvet: %d finding(s)\n", len(diags))
		}
		os.Exit(1)
	}
}

// finding is the JSON shape of one diagnostic, stable for downstream
// tooling: {"analyzer","file","line","col","message"}.
type finding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// renderJSON encodes the diagnostics as an indented JSON array with
// module-relative paths. encoding/json handles all escaping, so paths
// and messages containing quotes, backslashes or control characters
// round-trip exactly; an empty run encodes as [], never null.
func renderJSON(root string, diags []analysis.Diagnostic) ([]byte, error) {
	out := make([]finding, 0, len(diags))
	for _, d := range diags {
		out = append(out, finding{d.Analyzer, relFile(root, d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Message})
	}
	return json.MarshalIndent(out, "", "  ")
}

// relFile makes a finding's path module-relative (and slash-separated)
// when it lies inside the module, which is what both the JSON consumers
// and GitHub's annotation matcher expect.
func relFile(root, file string) string {
	if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return file
}

// githubAnnotation renders one finding as a GitHub Actions workflow
// command: ::error file=F,line=L,col=C::analyzer: message. Property
// values and the message use the Actions escaping rules (%, CR and LF
// always; commas and colons additionally inside properties), so paths
// and messages cannot break out of the command syntax.
func githubAnnotation(file string, line, col int, analyzer, message string) string {
	return fmt.Sprintf("::error file=%s,line=%d,col=%d::%s",
		escapeProperty(file), line, col, escapeData(analyzer+": "+message))
}

// escapeData escapes a workflow-command message.
func escapeData(s string) string {
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, "\r", "%0D")
	s = strings.ReplaceAll(s, "\n", "%0A")
	return s
}

// escapeProperty escapes a workflow-command property value.
func escapeProperty(s string) string {
	s = escapeData(s)
	s = strings.ReplaceAll(s, ":", "%3A")
	s = strings.ReplaceAll(s, ",", "%2C")
	return s
}

// findModuleRoot walks upward from the working directory to the nearest
// directory containing go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("hpvet: no go.mod found above the working directory")
		}
		dir = parent
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hpvet:", err)
	os.Exit(2)
}
