package main

import "testing"

func TestGithubAnnotation(t *testing.T) {
	got := githubAnnotation("internal/uarch/sim.go", 12, 5, "determinism", "time.Now() in simulation core")
	want := "::error file=internal/uarch/sim.go,line=12,col=5::determinism: time.Now() in simulation core"
	if got != want {
		t.Errorf("githubAnnotation =\n %s\nwant\n %s", got, want)
	}
}

// Escaping must keep hostile paths and messages inside the one workflow
// command: %, CR and LF everywhere, plus commas and colons in property
// values.
func TestGithubAnnotationEscaping(t *testing.T) {
	got := githubAnnotation("a,b:c%d.go", 1, 2, "panicpolicy", "line1\nline2 100%")
	want := "::error file=a%2Cb%3Ac%25d.go,line=1,col=2::panicpolicy: line1%0Aline2 100%25"
	if got != want {
		t.Errorf("githubAnnotation =\n %s\nwant\n %s", got, want)
	}
}
