package main

import (
	"encoding/json"
	"go/token"
	"testing"

	"halfprice/internal/analysis"
)

// TestRenderJSONRoundTrip feeds renderJSON hostile analyzer output —
// quotes, backslashes, newlines, non-ASCII, a comma-riddled path — and
// asserts every field survives an unmarshal bit-for-bit.
func TestRenderJSONRoundTrip(t *testing.T) {
	diags := []analysis.Diagnostic{
		{
			Analyzer: "unitcheck",
			Pos:      token.Position{Filename: "/mod/internal/timing/a,b.go", Line: 3, Column: 7},
			Message:  `mixes "ps" vs "ns"; path C:\tmp\x` + "\nsecond line\ttabbed",
		},
		{
			Analyzer: "seedplumb",
			Pos:      token.Position{Filename: "/elsewhere/outside.go", Line: 1, Column: 1},
			Message:  "naïve séed — 100%",
		},
	}
	data, err := renderJSON("/mod", diags)
	if err != nil {
		t.Fatal(err)
	}
	var back []finding
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("renderJSON output does not parse: %v\n%s", err, data)
	}
	if len(back) != len(diags) {
		t.Fatalf("%d findings after round trip, want %d", len(back), len(diags))
	}
	want := []finding{
		{"unitcheck", "internal/timing/a,b.go", 3, 7, diags[0].Message},
		{"seedplumb", "/elsewhere/outside.go", 1, 1, diags[1].Message},
	}
	for i := range want {
		if back[i] != want[i] {
			t.Errorf("finding %d = %+v\nwant      %+v", i, back[i], want[i])
		}
	}
}

// TestRenderJSONEmpty pins the no-findings encoding to [] — a null
// would break `jq length`-style CI consumers.
func TestRenderJSONEmpty(t *testing.T) {
	data, err := renderJSON("/mod", nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "[]" {
		t.Fatalf("empty run encodes as %q, want []", data)
	}
}

func TestGithubAnnotation(t *testing.T) {
	got := githubAnnotation("internal/uarch/sim.go", 12, 5, "determinism", "time.Now() in simulation core")
	want := "::error file=internal/uarch/sim.go,line=12,col=5::determinism: time.Now() in simulation core"
	if got != want {
		t.Errorf("githubAnnotation =\n %s\nwant\n %s", got, want)
	}
}

// Escaping must keep hostile paths and messages inside the one workflow
// command: %, CR and LF everywhere, plus commas and colons in property
// values.
func TestGithubAnnotationEscaping(t *testing.T) {
	got := githubAnnotation("a,b:c%d.go", 1, 2, "panicpolicy", "line1\nline2 100%")
	want := "::error file=a%2Cb%3Ac%25d.go,line=1,col=2::panicpolicy: line1%0Aline2 100%25"
	if got != want {
		t.Errorf("githubAnnotation =\n %s\nwant\n %s", got, want)
	}
}
