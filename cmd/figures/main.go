// Command figures regenerates the paper's tables and figures.
//
// Usage:
//
//	figures [flags]
//
//	-fig id      which artifact: all (default), t2, 2, 3, 4, 6, t3, 7,
//	             10, 14, 15, 16, timing, counters, a1..a10, cpi, ablations
//	-insts n     dynamic instructions per benchmark run (default 500000)
//	-bench list  comma-separated benchmark subset (default: all twelve)
//	-kernels     drive the execution-driven assembly kernels instead of
//	             the calibrated synthetic traces
//	-j n         max concurrent simulations (default GOMAXPROCS; 1 = serial)
//	-quiet       suppress the live progress line on stderr
//	-progress-json f  write NDJSON progress events to f ("-" = stderr)
//	-workers list     comma-separated sweepd worker addresses; simulations
//	                  shard across the fleet (load-aware) and fall back to
//	                  local execution when no worker is reachable
//	-registry f       worker registry (file or http(s) endpoint), re-read
//	                  while the sweep runs so workers join and leave
//	-worker-timeout d per-request timeout against remote workers
//	-token s          shared auth token presented to workers
//	                  (default $HALFPRICE_TOKEN)
//	-tls-ca f         CA certificate(s) to trust for https:// workers
//	-health-interval d fleet health-probe and registry re-read period
//	-cache-dir d      durable result store: completed simulations are
//	                  checkpointed there and a rerun (or a sweep resumed
//	                  after a crash) skips them as cache hits
//	-no-cache         bypass the durable result store
//	-sample           sampled simulation: detect phases, simulate only
//	                  representative windows, extrapolate whole-run stats
//	                  with 95% confidence columns in t2/16
//	-sample-interval n  sampling interval / window length (default 2000)
//	-sample-warmup n    detailed warmup per window (default 500)
//	-sample-phases n    max phases per workload (default 6)
//	-sample-windows n   detailed windows per phase (default 4)
//	-sample-seed n      phase-clustering seed (default 1)
//
// Output is one text table per artifact in the paper's layout, with a
// MEAN row appended; the notes line records the paper's reference values.
// Independent (benchmark, config) simulations fan out over a bounded
// worker pool; results are bit-identical at every -j.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"halfprice"
	"halfprice/internal/dist"
	"halfprice/internal/experiments"
	"halfprice/internal/progress"
	"halfprice/internal/sample"
	"halfprice/internal/store"
)

func main() {
	fig := flag.String("fig", "all", "artifact: all|t2|2|3|4|6|t3|7|10|14|15|16|timing|counters|a1..a10|cpi|ablations")
	insts := flag.Uint64("insts", 500000, "instructions per benchmark run")
	benchList := flag.String("bench", "", "comma-separated benchmark subset")
	kernels := flag.Bool("kernels", false, "use execution-driven kernels")
	format := flag.String("format", "table", "output format: table|csv|json")
	par := flag.Int("j", runtime.GOMAXPROCS(0), "max concurrent simulations (1 = serial)")
	quiet := flag.Bool("quiet", false, "suppress progress output")
	progressJSON := flag.String("progress-json", "", "write NDJSON progress events to this file (\"-\" = stderr)")
	dflags := dist.AddFlags()
	sflags := sample.AddFlags()
	cacheDir := flag.String("cache-dir", store.DefaultDir(), "durable result-store directory (empty disables caching)")
	noCache := flag.Bool("no-cache", false, "bypass the durable result store")
	flag.Parse()

	opts := halfprice.Options{Insts: *insts, UseKernels: *kernels, Parallel: *par}
	opts.Store = store.FromFlags(*cacheDir, *noCache)
	spec, serr := sflags()
	if serr != nil {
		fmt.Fprintln(os.Stderr, "figures:", serr)
		os.Exit(2)
	}
	opts.Sample = spec
	coord, closeCoord, derr := dflags.Coordinator(nil)
	if derr != nil {
		fmt.Fprintln(os.Stderr, "figures:", derr)
		os.Exit(2)
	}
	defer closeCoord()
	if coord != nil {
		opts.Backend = coord
	}
	if *benchList != "" {
		opts.Benchmarks = strings.Split(*benchList, ",")
		for _, b := range opts.Benchmarks {
			if _, err := halfprice.BenchmarkProfile(b); err != nil {
				fmt.Fprintln(os.Stderr, "figures:", err)
				os.Exit(2)
			}
		}
	}
	tracker, closeProgress, err := progress.FromFlags(*quiet, *progressJSON)
	if err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(2)
	}
	defer closeProgress()
	if tracker != nil {
		opts.Observer = tracker
	}
	r := halfprice.NewRunner(opts)

	artifacts := map[string]func() *halfprice.Result{
		"t2":       r.Table2BaseIPC,
		"2":        r.Figure2Formats,
		"3":        r.Figure3Breakdown,
		"4":        r.Figure4ReadyAtInsert,
		"6":        r.Figure6WakeupSlack,
		"t3":       r.Table3OperandOrder,
		"7":        r.Figure7PredictorAccuracy,
		"10":       r.Figure10RegAccess,
		"14":       r.Figure14SeqWakeup,
		"15":       r.Figure15SeqRegAccess,
		"16":       r.Figure16Combined,
		"timing":   experiments.TimingClaims,
		"counters": r.EventCounters,
		"a1":       r.AblationSlowBus,
		"a2":       r.AblationRecovery,
		"a3":       r.AblationPredictors,
		"a4":       r.AblationExtensions,
		"a5":       r.AblationFrequency,
		"a6":       r.AblationEnergy,
		"a7":       r.AblationSelect,
		"a8":       r.AblationSchedulerDesigns,
		"a9":       r.AblationBranchNoise,
		"a10":      r.AblationPrefetch,
		"cpi":      r.CPIStacks,
	}

	emit := func(res *halfprice.Result) {
		switch *format {
		case "table":
			fmt.Println(res)
		case "csv":
			if err := res.WriteCSV(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "figures:", err)
				os.Exit(1)
			}
		case "json":
			data, err := json.MarshalIndent(res, "", "  ")
			if err != nil {
				fmt.Fprintln(os.Stderr, "figures:", err)
				os.Exit(1)
			}
			fmt.Println(string(data))
		default:
			fmt.Fprintf(os.Stderr, "figures: unknown format %q\n", *format)
			os.Exit(2)
		}
	}

	switch *fig {
	case "all":
		for _, res := range r.All() {
			emit(res)
		}
	case "ablations":
		for _, res := range r.Ablations() {
			emit(res)
		}
	default:
		f, ok := artifacts[*fig]
		if !ok {
			fmt.Fprintf(os.Stderr, "figures: unknown artifact %q\n", *fig)
			os.Exit(2)
		}
		emit(f())
	}
}
