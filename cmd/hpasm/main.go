// Command hpasm assembles and runs HPA64 programs.
//
// Usage:
//
//	hpasm run file.s        assemble and execute; print output and r0
//	hpasm disasm file.s     assemble and print the disassembly
//	hpasm trace file.s      execute and print one line per instruction
//	hpasm sim file.s        run on the timing pipeline; print IPC
//	hpasm pipeview file.s   render the first instructions' pipeline chart
//	                        (F fetch, D dispatch, I issue, E done, C commit,
//	                        x squash)
//	hpasm record file.s     execute and write a binary trace to -o
//	hpasm simtrace file.tr  replay a recorded trace on the timing pipeline
//
//	-max n                  instruction budget (default 10,000,000)
//	-width n                machine width for sim/pipeview (4 or 8)
//	-n k                    instructions shown by pipeview (default 48)
package main

import (
	"flag"
	"fmt"
	"os"

	"halfprice"
	"halfprice/internal/asm"
	"halfprice/internal/trace"
	"halfprice/internal/uarch"
	"halfprice/internal/vm"
)

func main() {
	maxInsts := flag.Uint64("max", 10_000_000, "instruction budget")
	width := flag.Int("width", 4, "machine width for sim")
	pvInsts := flag.Int("n", 48, "instructions shown by pipeview")
	outPath := flag.String("o", "out.tr", "output trace for record")
	flag.Parse()
	if flag.NArg() != 2 {
		usage()
	}
	cmd, path := flag.Arg(0), flag.Arg(1)

	if cmd == "simtrace" {
		f, err := os.Open(path)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		fs, err := trace.OpenFile(f)
		if err != nil {
			fail(err)
		}
		st := uarch.New(configFor(*width), fs).Run()
		if fs.Err() != nil {
			fail(fs.Err())
		}
		fmt.Printf("replayed %d instructions in %d cycles: IPC %.3f\n",
			st.Committed, st.Cycles, st.IPC())
		return
	}

	src, err := os.ReadFile(path)
	if err != nil {
		fail(err)
	}
	prog, err := asm.Assemble(string(src))
	if err != nil {
		fail(err)
	}

	switch cmd {
	case "record":
		out, err := os.Create(*outPath)
		if err != nil {
			fail(err)
		}
		n, err := trace.WriteFile(out, trace.NewVMStream(vm.New(prog), *maxInsts))
		if err != nil {
			fail(err)
		}
		if err := out.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("recorded %d instructions to %s\n", n, *outPath)
		return
	}

	switch cmd {
	case "disasm":
		fmt.Print(prog.Disassemble())
	case "run":
		m := vm.New(prog)
		n, err := m.Run(*maxInsts)
		if err != nil {
			fail(err)
		}
		if m.Output.Len() > 0 {
			fmt.Printf("output: %q\n", m.Output.String())
		}
		fmt.Printf("executed %d instructions, halted=%v, r0=%d\n", n, m.Halted, int64(m.Regs[0]))
	case "trace":
		m := vm.New(prog)
		for !m.Halted {
			rec, err := m.Step()
			if err != nil {
				fail(err)
			}
			fmt.Printf("%8d  %#08x  %v\n", rec.Seq, rec.PC, rec.Inst)
			if rec.Seq+1 >= *maxInsts {
				break
			}
		}
	case "sim":
		st := uarch.New(configFor(*width), trace.NewVMStream(vm.New(prog), *maxInsts)).Run()
		fmt.Printf("committed %d instructions in %d cycles: IPC %.3f\n",
			st.Committed, st.Cycles, st.IPC())
	case "pipeview":
		sim := uarch.New(configFor(*width), trace.NewVMStream(vm.New(prog), *maxInsts))
		pv := uarch.NewPipeview(*pvInsts)
		sim.SetTracer(pv)
		sim.Run()
		if err := pv.Render(os.Stdout); err != nil {
			fail(err)
		}
	default:
		usage()
	}
}

func configFor(width int) halfprice.Config {
	switch width {
	case 4:
		return halfprice.Config4Wide()
	case 8:
		return halfprice.Config8Wide()
	}
	fail(fmt.Errorf("width must be 4 or 8"))
	panic("unreachable")
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: hpasm [flags] run|disasm|trace|sim file.s")
	os.Exit(2)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "hpasm:", err)
	os.Exit(1)
}
