// Command report regenerates the complete evaluation — every paper
// artifact plus the repository's ablation studies — as a single markdown
// document.
//
// Usage:
//
//	report [-o report.md] [-insts n] [-kernels] [-skip-ablations]
//	       [-j n] [-quiet] [-progress-json f]
//	       [-workers host1:port,host2:port] [-registry f]
//	       [-worker-timeout d] [-token s] [-tls-ca f]
//	       [-health-interval d] [-cache-dir d] [-no-cache]
//	       [-sample] [-sample-interval n] [-sample-warmup n]
//	       [-sample-phases n] [-sample-windows n] [-sample-seed n]
//
// With -sample the whole evaluation runs in sampled mode: phases are
// detected per workload, only representative windows are simulated in
// detail, and Table 2 / Figure 16 carry 95% confidence columns.
//
// The output is self-contained: run it after any model change to get a
// fresh paper-vs-measured report. Simulations fan out over a bounded
// worker pool (-j); the live sweep status line replaces the old
// per-artifact elapsed-time log (which survives in the per-artifact
// "done" lines below).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"halfprice"
	"halfprice/internal/dist"
	"halfprice/internal/progress"
	"halfprice/internal/sample"
	"halfprice/internal/store"
)

func main() {
	out := flag.String("o", "report.md", "output markdown file")
	insts := flag.Uint64("insts", 300000, "instructions per benchmark run")
	kernels := flag.Bool("kernels", false, "use execution-driven kernels")
	skipAbl := flag.Bool("skip-ablations", false, "omit the ablation studies")
	par := flag.Int("j", runtime.GOMAXPROCS(0), "max concurrent simulations (1 = serial)")
	quiet := flag.Bool("quiet", false, "suppress progress output")
	progressJSON := flag.String("progress-json", "", "write NDJSON progress events to this file (\"-\" = stderr)")
	dflags := dist.AddFlags()
	sflags := sample.AddFlags()
	cacheDir := flag.String("cache-dir", store.DefaultDir(), "durable result-store directory (empty disables caching)")
	noCache := flag.Bool("no-cache", false, "bypass the durable result store")
	flag.Parse()

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "report:", err)
		os.Exit(1)
	}
	defer f.Close()

	opts := halfprice.Options{Insts: *insts, UseKernels: *kernels, Parallel: *par}
	opts.Store = store.FromFlags(*cacheDir, *noCache)
	spec, serr := sflags()
	if serr != nil {
		fmt.Fprintln(os.Stderr, "report:", serr)
		os.Exit(2)
	}
	opts.Sample = spec
	coord, closeCoord, derr := dflags.Coordinator(nil)
	if derr != nil {
		fmt.Fprintln(os.Stderr, "report:", derr)
		os.Exit(2)
	}
	defer closeCoord()
	if coord != nil {
		opts.Backend = coord
	}
	tracker, closeProgress, perr := progress.FromFlags(*quiet, *progressJSON)
	if perr != nil {
		fmt.Fprintln(os.Stderr, "report:", perr)
		os.Exit(2)
	}
	defer closeProgress()
	if tracker != nil {
		opts.Observer = tracker
	}
	r := halfprice.NewRunner(opts)

	fmt.Fprintf(f, "# Half-Price Architecture — regenerated evaluation\n\n")
	fmt.Fprintf(f, "Generated %s · %d instructions/benchmark · workloads: %s\n\n",
		time.Now().Format(time.RFC3339), *insts, workloadKind(*kernels))
	fmt.Fprintf(f, "## Paper artifacts\n\n")
	start := time.Now()
	for _, res := range r.All() {
		fmt.Fprintln(f, res.Markdown())
		fmt.Fprintf(os.Stderr, "report: %-10s done (%s elapsed)\n", res.ID, time.Since(start).Round(time.Second))
	}
	if !*skipAbl {
		fmt.Fprintf(f, "## Ablation studies\n\n")
		for _, res := range r.Ablations() {
			fmt.Fprintln(f, res.Markdown())
			fmt.Fprintf(os.Stderr, "report: %-12s done (%s elapsed)\n", res.ID, time.Since(start).Round(time.Second))
		}
	}
	fmt.Fprintf(os.Stderr, "report: wrote %s\n", *out)
}

func workloadKind(kernels bool) string {
	if kernels {
		return "execution-driven assembly kernels"
	}
	return "calibrated synthetic traces"
}
