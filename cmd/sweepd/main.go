// Command sweepd is the distributed-sweep worker daemon. It serves the
// internal/dist HTTP/JSON API — POST /run executes one serialized
// (benchmark, config, insts) simulation request and streams progress
// events plus the final statistics back; GET /healthz reports liveness;
// POST /drain starts a graceful decommission. Point any sweep-driving
// command (figures, report, calibrate, halfprice) at a fleet of these
// with -workers host1:port,host2:port.
//
// Usage:
//
//	sweepd [flags]
//
//	-addr host:port  listen address (default localhost:9771)
//	-j n             max concurrent simulations (default GOMAXPROCS)
//	-quiet           suppress the per-request log on stderr
//
// Simulations run through exactly the same in-process path as a local
// sweep, so results are bit-identical to local execution. Repeated or
// concurrent requests for the same simulation are deduplicated
// (singleflight) and memoised. SIGINT/SIGTERM drains the daemon: no new
// requests are accepted, in-flight runs finish, then it exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"halfprice/internal/dist"
)

func main() {
	addr := flag.String("addr", "localhost:9771", "listen address (host:port)")
	par := flag.Int("j", runtime.GOMAXPROCS(0), "max concurrent simulations")
	quiet := flag.Bool("quiet", false, "suppress per-request logging")
	flag.Parse()

	logf := log.New(os.Stderr, "", log.LstdFlags).Printf
	if *quiet {
		logf = func(string, ...any) {}
	}

	server := dist.NewServer(dist.ServerOptions{Parallel: *par, Logf: logf})
	httpSrv := &http.Server{Addr: *addr, Handler: server.Handler()}

	// First signal: drain (healthz flips to 503 so coordinators evict
	// this worker), finish in-flight runs, exit. Second signal: exit now.
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigs
		logf("sweepd: signal received; draining")
		server.Drain()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		go func() {
			<-sigs
			logf("sweepd: second signal; exiting immediately")
			cancel()
		}()
		httpSrv.Shutdown(ctx)
	}()

	logf("sweepd: serving on %s (max %d concurrent simulations)", *addr, *par)
	if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fmt.Fprintln(os.Stderr, "sweepd:", err)
		os.Exit(1)
	}
}
