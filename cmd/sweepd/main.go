// Command sweepd is the distributed-sweep worker daemon. It serves the
// internal/dist HTTP/JSON API — POST /run executes one serialized
// (benchmark, config, insts) simulation request and streams progress
// events plus the final statistics back; GET /healthz reports liveness;
// POST /drain starts a graceful decommission. Point any sweep-driving
// command (figures, report, calibrate, halfprice) at a fleet of these
// with -workers host1:port,host2:port or a shared -registry file.
//
// Usage:
//
//	sweepd [flags]
//
//	-addr host:port  listen address (default localhost:9771)
//	-j n             max concurrent simulations (default GOMAXPROCS)
//	-memo-cap n      completed results kept in the memo cache (default 512)
//	-token s         require "Authorization: Bearer s" on /run and /drain
//	                 (default $HALFPRICE_TOKEN; empty = no auth)
//	-tls-cert f      PEM certificate; with -tls-key, serve HTTPS
//	-tls-key f       PEM private key
//	-register f      registry file to self-announce in on start and
//	                 leave again on drain
//	-advertise a     address announced in the registry (default -addr;
//	                 an https:// prefix is added when serving TLS)
//	-chaos-seed n    inject a deterministic pre-run delay before each
//	                 simulation, seeded by n (0 = off; chaos testing —
//	                 see internal/chaos and scripts/chaos-smoke.sh)
//	-chaos-max-delay d  upper bound for -chaos-seed delays (default 50ms)
//	-quiet           suppress the per-request log on stderr
//
// Simulations run through exactly the same in-process path as a local
// sweep, so results are bit-identical to local execution. Repeated or
// concurrent requests for the same simulation are deduplicated
// (singleflight) and memoised, with the memo bounded to -memo-cap
// completed results. SIGINT/SIGTERM drains the daemon: it leaves the
// registry, stops accepting requests, finishes in-flight runs, then
// exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"sync"
	"syscall"
	"time"

	"halfprice/internal/chaos"
	"halfprice/internal/dist"
	"halfprice/internal/experiments"
)

func main() {
	addr := flag.String("addr", "localhost:9771", "listen address (host:port)")
	par := flag.Int("j", runtime.GOMAXPROCS(0), "max concurrent simulations")
	memoCap := flag.Int("memo-cap", 0, "completed results kept in the memo cache (0 = default 512)")
	token := flag.String("token", os.Getenv(dist.TokenEnv), "shared auth token required on /run and /drain (default $"+dist.TokenEnv+"; empty = no auth)")
	tlsCert := flag.String("tls-cert", "", "PEM certificate file; with -tls-key, serve HTTPS")
	tlsKey := flag.String("tls-key", "", "PEM private key file")
	register := flag.String("register", "", "registry file to self-announce in on start and leave on drain")
	advertise := flag.String("advertise", "", "address announced in the registry (default -addr; https:// is prefixed when serving TLS)")
	chaosSeed := flag.Int64("chaos-seed", 0, "inject a deterministic pre-run delay before each simulation, seeded by this value (0 = off; chaos testing)")
	chaosMaxDelay := flag.Duration("chaos-max-delay", 50*time.Millisecond, "upper bound for -chaos-seed pre-run delays")
	quiet := flag.Bool("quiet", false, "suppress per-request logging")
	flag.Parse()

	logf := log.New(os.Stderr, "", log.LstdFlags).Printf
	if *quiet {
		logf = func(string, ...any) {}
	}
	if (*tlsCert == "") != (*tlsKey == "") {
		fmt.Fprintln(os.Stderr, "sweepd: -tls-cert and -tls-key must be given together")
		os.Exit(2)
	}

	// -chaos-seed: a deterministic pre-run delay per request, keyed on
	// (seed, request key, per-key call index) with chaos.Roll — the n-th
	// run of a given simulation sleeps the same fraction of
	// -chaos-max-delay on every fleet with the same seed, regardless of
	// how requests interleave across goroutines.
	var preRun func(req experiments.Request)
	if *chaosSeed != 0 {
		var mu sync.Mutex
		calls := map[string]uint64{}
		preRun = func(req experiments.Request) {
			key := req.Key()
			mu.Lock()
			n := calls[key]
			calls[key] = n + 1
			mu.Unlock()
			frac := chaos.Roll(*chaosSeed, "prerun-delay", key, n)
			time.Sleep(time.Duration(frac * float64(*chaosMaxDelay)))
		}
		logf("sweepd: chaos pre-run delays on (seed %d, max %s)", *chaosSeed, *chaosMaxDelay)
	}

	server := dist.NewServer(dist.ServerOptions{Parallel: *par, MemoCap: *memoCap, Token: *token, PreRun: preRun, Logf: logf})
	httpSrv := &http.Server{Addr: *addr, Handler: server.Handler()}

	// Self-announce in the registry before serving; deregister exactly
	// once — on drain (so coordinators' next registry read drops this
	// worker) or on any exit path.
	deregister := func() {}
	if *register != "" {
		announce := strings.TrimSpace(*advertise)
		if announce == "" {
			announce = *addr
		}
		if *tlsCert != "" && !strings.Contains(announce, "://") {
			announce = "https://" + announce
		}
		reg := dist.NewRegistry(*register)
		if err := reg.Register(announce); err != nil {
			fmt.Fprintln(os.Stderr, "sweepd:", err)
			os.Exit(1)
		}
		logf("sweepd: registered %s in %s", announce, *register)
		var once sync.Once
		deregister = func() {
			once.Do(func() {
				if err := reg.Deregister(announce); err != nil {
					logf("sweepd: deregistering: %v", err)
					return
				}
				logf("sweepd: deregistered %s from %s", announce, *register)
			})
		}
	}
	defer deregister()

	// First signal: leave the registry, drain (healthz flips to 503 so
	// coordinators evict this worker), finish in-flight runs, exit.
	// Second signal: exit now.
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigs
		logf("sweepd: signal received; draining")
		deregister()
		server.Drain()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		go func() {
			<-sigs
			logf("sweepd: second signal; exiting immediately")
			cancel()
		}()
		httpSrv.Shutdown(ctx)
	}()

	scheme := "http"
	if *tlsCert != "" {
		scheme = "https"
	}
	logf("sweepd: serving %s on %s (max %d concurrent simulations)", scheme, *addr, *par)
	var err error
	if *tlsCert != "" {
		err = httpSrv.ListenAndServeTLS(*tlsCert, *tlsKey)
	} else {
		err = httpSrv.ListenAndServe()
	}
	if err != nil && err != http.ErrServerClosed {
		deregister()
		fmt.Fprintln(os.Stderr, "sweepd:", err)
		os.Exit(1)
	}
}
