package halfprice

// The benchmark harness: one testing.B benchmark per table and figure of
// the paper's evaluation. Each benchmark regenerates its artifact on a
// reduced instruction budget (cmd/figures produces the full-size tables)
// and reports the headline number as a custom metric, so
// `go test -bench=. -benchmem` reproduces the whole evaluation and prints
// the same summary values the paper reports.

import (
	"fmt"
	"testing"

	"halfprice/internal/experiments"
)

// benchOpts keeps the per-iteration work bounded while still warming the
// predictors and caches past their cold-start transients.
func benchOpts() Options {
	return Options{Insts: 50000}
}

func reportSeriesMean(b *testing.B, res *Result, label, metric string) {
	b.Helper()
	if m, ok := res.Mean(label); ok {
		b.ReportMetric(m, metric)
	}
}

func BenchmarkTable2BaseIPC(b *testing.B) {
	var res *Result
	for i := 0; i < b.N; i++ {
		res = experiments.NewRunner(benchOpts()).Table2BaseIPC()
	}
	reportSeriesMean(b, res, "IPC-4w", "ipc4w")
	reportSeriesMean(b, res, "IPC-8w", "ipc8w")
}

func BenchmarkFigure2Formats(b *testing.B) {
	var res *Result
	for i := 0; i < b.N; i++ {
		res = experiments.NewRunner(benchOpts()).Figure2Formats()
	}
	reportSeriesMean(b, res, "2src-format", "frac2srcfmt")
}

func BenchmarkFigure3Breakdown(b *testing.B) {
	var res *Result
	for i := 0; i < b.N; i++ {
		res = experiments.NewRunner(benchOpts()).Figure3Breakdown()
	}
	reportSeriesMean(b, res, "2-source", "frac2src")
}

func BenchmarkFigure4ReadyAtInsert(b *testing.B) {
	var res *Result
	for i := 0; i < b.N; i++ {
		res = experiments.NewRunner(benchOpts()).Figure4ReadyAtInsert()
	}
	reportSeriesMean(b, res, "0-ready", "frac0ready")
}

func BenchmarkFigure6WakeupSlack(b *testing.B) {
	var res *Result
	for i := 0; i < b.N; i++ {
		res = experiments.NewRunner(benchOpts()).Figure6WakeupSlack()
	}
	reportSeriesMean(b, res, "slack-0", "fracsimultaneous")
}

func BenchmarkTable3OperandOrder(b *testing.B) {
	var res *Result
	for i := 0; i < b.N; i++ {
		res = experiments.NewRunner(benchOpts()).Table3OperandOrder()
	}
	reportSeriesMean(b, res, "same-4w", "ordersame4w")
	reportSeriesMean(b, res, "left-4w", "lastleft4w")
}

func BenchmarkFigure7PredictorAccuracy(b *testing.B) {
	var res *Result
	for i := 0; i < b.N; i++ {
		res = experiments.NewRunner(benchOpts()).Figure7PredictorAccuracy()
	}
	reportSeriesMean(b, res, "acc-1024", "acc1k")
	reportSeriesMean(b, res, "acc-128", "acc128")
}

func BenchmarkFigure10RegAccess(b *testing.B) {
	var res *Result
	for i := 0; i < b.N; i++ {
		res = experiments.NewRunner(benchOpts()).Figure10RegAccess()
	}
	reportSeriesMean(b, res, "2-port-need", "frac2port")
}

func BenchmarkFigure14SeqWakeup(b *testing.B) {
	var res *Result
	for i := 0; i < b.N; i++ {
		res = experiments.NewRunner(benchOpts()).Figure14SeqWakeup()
	}
	reportSeriesMean(b, res, "seq-wakeup-4w", "seqwakeup4w")
	reportSeriesMean(b, res, "tag-elim-8w", "tagelim8w")
	reportSeriesMean(b, res, "no-pred-8w", "nopred8w")
}

func BenchmarkFigure15SeqRegAccess(b *testing.B) {
	var res *Result
	for i := 0; i < b.N; i++ {
		res = experiments.NewRunner(benchOpts()).Figure15SeqRegAccess()
	}
	reportSeriesMean(b, res, "seq-rf-4w", "seqrf4w")
	reportSeriesMean(b, res, "crossbar-4w", "crossbar4w")
}

func BenchmarkFigure16Combined(b *testing.B) {
	var res *Result
	for i := 0; i < b.N; i++ {
		res = experiments.NewRunner(benchOpts()).Figure16Combined()
	}
	reportSeriesMean(b, res, "combined-4w", "combined4w")
	reportSeriesMean(b, res, "combined-8w", "combined8w")
}

func BenchmarkTimingScheduler(b *testing.B) {
	var sp float64
	for i := 0; i < b.N; i++ {
		sp = SchedulerDelayPs(64, 4, false) - SchedulerDelayPs(64, 4, true)
	}
	b.ReportMetric(sp, "ps-saved")
}

func BenchmarkTimingRegfile(b *testing.B) {
	var sp float64
	for i := 0; i < b.N; i++ {
		sp = RegfileAccessNs(160, 8, false) - RegfileAccessNs(160, 8, true)
	}
	b.ReportMetric(sp, "ns-saved")
}

// Ablation benches: the design-choice studies of DESIGN.md §4 beyond the
// paper's own artifacts.

func BenchmarkAblationSlowBus(b *testing.B) {
	var res *Result
	for i := 0; i < b.N; i++ {
		res = experiments.NewRunner(benchOpts()).AblationSlowBus()
	}
	reportSeriesMean(b, res, "slow-1cy", "slow1")
	reportSeriesMean(b, res, "slow-3cy", "slow3")
}

func BenchmarkAblationRecovery(b *testing.B) {
	var res *Result
	for i := 0; i < b.N; i++ {
		res = experiments.NewRunner(benchOpts()).AblationRecovery()
	}
	reportSeriesMean(b, res, "seqw-selective", "seqwsel")
}

func BenchmarkAblationPredictors(b *testing.B) {
	var res *Result
	for i := 0; i < b.N; i++ {
		res = experiments.NewRunner(benchOpts()).AblationPredictors()
	}
	reportSeriesMean(b, res, "bimodal-1k-acc", "bimodalacc")
	reportSeriesMean(b, res, "twolevel-1k-acc", "twolevelacc")
}

func BenchmarkAblationExtensions(b *testing.B) {
	var res *Result
	for i := 0; i < b.N; i++ {
		res = experiments.NewRunner(benchOpts()).AblationExtensions()
	}
	reportSeriesMean(b, res, "everything", "operandcentric")
}

func BenchmarkAblationFrequency(b *testing.B) {
	var res *Result
	for i := 0; i < b.N; i++ {
		res = experiments.NewRunner(benchOpts()).AblationFrequency()
	}
	reportSeriesMean(b, res, "perf-ratio", "perfratio")
}

// BenchmarkPipelineThroughput measures raw simulator speed (simulated
// instructions per wall-clock operation) — the engineering metric for the
// simulator itself rather than a paper artifact.
func BenchmarkPipelineThroughput(b *testing.B) {
	cfg := Config4Wide()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MustSimulate(cfg, "gzip", 50000)
	}
	b.ReportMetric(50000, "insts/op")
}

// BenchmarkSweep times the full figures sweep (every paper artifact) end
// to end at several worker-pool sizes. On a multi-core machine the -j 4
// case completes the same sweep in well under half the -j 1 wall clock
// (the sweep is embarrassingly parallel: ~100+ independent simulations
// behind a deduplicating memo); on a single hardware thread the pool
// degrades gracefully to serial speed. Compare the sub-benchmarks'
// ns/op directly:
//
//	go test -bench 'BenchmarkSweep/' -benchtime 1x
func BenchmarkSweep(b *testing.B) {
	for _, par := range []int{1, 4} {
		b.Run(fmt.Sprintf("j=%d", par), func(b *testing.B) {
			var sims uint64
			for i := 0; i < b.N; i++ {
				opts := benchOpts()
				opts.Parallel = par
				r := experiments.NewRunner(opts)
				r.All()
				sims = r.Sims()
			}
			b.ReportMetric(float64(sims), "sims/op")
			b.ReportMetric(float64(sims)*float64(benchOpts().Insts), "insts/op")
		})
	}
}
