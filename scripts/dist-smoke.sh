#!/usr/bin/env bash
# Distributed-sweep smoke test (CI and `make dist-smoke`), two phases:
#
#   1. Static fleet: two local sweepd workers via -workers, one figures
#      sweep through the coordinator, output byte-identical to the same
#      sweep run serially in-process; merged NDJSON progress validated
#      with events from both workers.
#
#   2. Fleet churn with auth: token-authenticated workers self-announce
#      in a registry file, an unauthenticated /run is rejected with 401,
#      one worker is killed (drain + deregister) and another added
#      mid-sweep — the output must still be byte-identical to serial.
set -euo pipefail

cd "$(dirname "$0")/.."

insts=${DIST_SMOKE_INSTS:-2000}
port_a=${DIST_SMOKE_PORT_A:-9771}
port_b=${DIST_SMOKE_PORT_B:-9772}
port_c=${DIST_SMOKE_PORT_C:-9773}
port_d=${DIST_SMOKE_PORT_D:-9774}

tmp=$(mktemp -d)
worker_pids=""
cleanup() {
  # Kill the workers by recorded pid — `jobs -p` is empty in a signal
  # trap's subshell-less context on some bash versions, and the workers
  # must die even when the comparison below fails the script.
  kill $worker_pids $(jobs -p) 2>/dev/null || true
  wait 2>/dev/null || true
  rm -rf "$tmp"
}
trap cleanup EXIT
trap 'exit 130' INT
trap 'exit 143' TERM

wait_up() { # port...
  # Readiness gate: httpprobe -wait retries until each listener answers
  # an HTTP request (any status) or the explicit budget runs out.
  urls=""
  for port in "$@"; do
    urls="$urls http://localhost:$port/healthz"
  done
  "$tmp/httpprobe" -wait 15s $urls
}

go build -o "$tmp/sweepd" ./cmd/sweepd
go build -o "$tmp/figures" ./cmd/figures
go build -o "$tmp/httpprobe" ./scripts/httpprobe

# Both sweeps bypass the durable result store: the point is comparing a
# real distributed execution against a real serial one, and a cache hit
# on the second run would make the equivalence vacuous (and starve the
# progress stream of worker-sourced events).
echo "dist-smoke: serial in-process sweep" >&2
"$tmp/figures" -insts "$insts" -j 1 -quiet -no-cache > "$tmp/serial.txt"

### Phase 1: static -workers fleet ###################################

"$tmp/sweepd" -addr "localhost:$port_a" &
worker_pids="$worker_pids $!"
"$tmp/sweepd" -addr "localhost:$port_b" &
worker_pids="$worker_pids $!"
wait_up "$port_a" "$port_b"

echo "dist-smoke: distributed sweep via localhost:$port_a,localhost:$port_b" >&2
"$tmp/figures" -insts "$insts" -j 8 -quiet -no-cache \
  -workers "localhost:$port_a,localhost:$port_b" \
  -progress-json "$tmp/progress.ndjson" > "$tmp/dist.txt"

if ! cmp "$tmp/serial.txt" "$tmp/dist.txt"; then
  echo "dist-smoke: FAIL — distributed output differs from serial" >&2
  diff "$tmp/serial.txt" "$tmp/dist.txt" | head -40 >&2 || true
  exit 1
fi

go run ./scripts/ndjsoncheck -sources 2 < "$tmp/progress.ndjson"

### Phase 2: registry + auth + churn #################################

token="dist-smoke-token"
registry="$tmp/registry"

"$tmp/sweepd" -addr "localhost:$port_c" -token "$token" \
  -register "$registry" -advertise "localhost:$port_c" &
churn_pid=$!
worker_pids="$worker_pids $churn_pid"
wait_up "$port_c"

grep -q "localhost:$port_c" "$registry" || {
  echo "dist-smoke: FAIL — worker did not self-announce in the registry" >&2
  exit 1
}

echo "dist-smoke: unauthorized /run must be rejected" >&2
"$tmp/httpprobe" -method POST -body '{}' -expect 401 "http://localhost:$port_c/run" >/dev/null
"$tmp/httpprobe" -expect 200 "http://localhost:$port_c/healthz" >/dev/null

echo "dist-smoke: registry sweep with churn (kill one worker, add another)" >&2
"$tmp/figures" -insts "$insts" -j 8 -quiet -no-cache \
  -registry "$registry" -token "$token" -health-interval 250ms \
  -progress-json "$tmp/progress2.ndjson" > "$tmp/dist2.txt" &
sweep_pid=$!

sleep 1
kill -TERM "$churn_pid" 2>/dev/null || true  # drain + deregister mid-sweep
"$tmp/sweepd" -addr "localhost:$port_d" -token "$token" \
  -register "$registry" -advertise "localhost:$port_d" &
worker_pids="$worker_pids $!"

if ! wait "$sweep_pid"; then
  echo "dist-smoke: FAIL — sweep failed under fleet churn" >&2
  exit 1
fi

if ! cmp "$tmp/serial.txt" "$tmp/dist2.txt"; then
  echo "dist-smoke: FAIL — churned registry sweep output differs from serial" >&2
  diff "$tmp/serial.txt" "$tmp/dist2.txt" | head -40 >&2 || true
  exit 1
fi

if grep -q "localhost:$port_c" "$registry"; then
  echo "dist-smoke: FAIL — drained worker still listed in the registry" >&2
  exit 1
fi

go run ./scripts/ndjsoncheck < "$tmp/progress2.ndjson"

echo "dist-smoke: ok — serial, static-fleet and churned-registry outputs byte-identical" >&2
