#!/usr/bin/env bash
# Distributed-sweep smoke test (CI and `make dist-smoke`): start two
# local sweepd workers, run a small figures sweep through the
# coordinator, and require the output to be byte-identical to the same
# sweep run serially in-process. Also validates the merged NDJSON
# progress stream and that both workers contributed events.
set -euo pipefail

cd "$(dirname "$0")/.."

insts=${DIST_SMOKE_INSTS:-2000}
port_a=${DIST_SMOKE_PORT_A:-9771}
port_b=${DIST_SMOKE_PORT_B:-9772}

tmp=$(mktemp -d)
worker_pids=""
cleanup() {
  # Kill the workers by recorded pid — `jobs -p` is empty in a signal
  # trap's subshell-less context on some bash versions, and the workers
  # must die even when the comparison below fails the script.
  kill $worker_pids $(jobs -p) 2>/dev/null || true
  wait 2>/dev/null || true
  rm -rf "$tmp"
}
trap cleanup EXIT
trap 'exit 130' INT
trap 'exit 143' TERM

go build -o "$tmp/sweepd" ./cmd/sweepd
go build -o "$tmp/figures" ./cmd/figures

"$tmp/sweepd" -addr "localhost:$port_a" &
worker_pids="$worker_pids $!"
"$tmp/sweepd" -addr "localhost:$port_b" &
worker_pids="$worker_pids $!"

# Wait for both workers to accept connections.
for port in "$port_a" "$port_b"; do
  up=""
  for _ in $(seq 1 50); do
    if (exec 3<>"/dev/tcp/localhost/$port") 2>/dev/null; then
      exec 3>&- 3<&- || true
      up=1
      break
    fi
    sleep 0.2
  done
  if [ -z "$up" ]; then
    echo "dist-smoke: worker on port $port never came up" >&2
    exit 1
  fi
done

# Both sweeps bypass the durable result store: the point is comparing a
# real distributed execution against a real serial one, and a cache hit
# on the second run would make the equivalence vacuous (and starve the
# progress stream of worker-sourced events).
echo "dist-smoke: serial in-process sweep" >&2
"$tmp/figures" -insts "$insts" -j 1 -quiet -no-cache > "$tmp/serial.txt"

echo "dist-smoke: distributed sweep via localhost:$port_a,localhost:$port_b" >&2
"$tmp/figures" -insts "$insts" -j 8 -quiet -no-cache \
  -workers "localhost:$port_a,localhost:$port_b" \
  -progress-json "$tmp/progress.ndjson" > "$tmp/dist.txt"

if ! cmp "$tmp/serial.txt" "$tmp/dist.txt"; then
  echo "dist-smoke: FAIL — distributed output differs from serial" >&2
  diff "$tmp/serial.txt" "$tmp/dist.txt" | head -40 >&2 || true
  exit 1
fi

go run ./scripts/ndjsoncheck -sources 2 < "$tmp/progress.ndjson"

echo "dist-smoke: ok — serial and distributed outputs byte-identical" >&2
