// Command httpprobe issues one HTTP request and checks the response
// status — the smoke scripts' curl-free way to assert, e.g., that an
// unauthenticated POST to a token-guarded sweepd endpoint comes back
// 401 while an authenticated one does not.
//
// Usage:
//
//	go run ./scripts/httpprobe [-method GET] [-token t] [-expect code] url
//
// The status code is printed to stdout; with -expect the exit status is
// non-zero when it does not match.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"
)

func main() {
	method := flag.String("method", http.MethodGet, "request method")
	token := flag.String("token", "", "send \"Authorization: Bearer <token>\"")
	body := flag.String("body", "", "request body")
	expect := flag.Int("expect", 0, "fail unless the response status matches (0 = report only)")
	timeout := flag.Duration("timeout", 10*time.Second, "request timeout")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: httpprobe [flags] url")
		os.Exit(2)
	}

	req, err := http.NewRequest(*method, flag.Arg(0), strings.NewReader(*body))
	if err != nil {
		fmt.Fprintln(os.Stderr, "httpprobe:", err)
		os.Exit(2)
	}
	if *body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	if *token != "" {
		req.Header.Set("Authorization", "Bearer "+*token)
	}
	resp, err := (&http.Client{Timeout: *timeout}).Do(req)
	if err != nil {
		fmt.Fprintln(os.Stderr, "httpprobe:", err)
		os.Exit(1)
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()

	fmt.Println(resp.StatusCode)
	if *expect != 0 && resp.StatusCode != *expect {
		fmt.Fprintf(os.Stderr, "httpprobe: %s %s: status %d, want %d\n", *method, flag.Arg(0), resp.StatusCode, *expect)
		os.Exit(1)
	}
}
