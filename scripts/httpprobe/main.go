// Command httpprobe issues one HTTP request and checks the response
// status — the smoke scripts' curl-free way to assert, e.g., that an
// unauthenticated POST to a token-guarded sweepd endpoint comes back
// 401 while an authenticated one does not.
//
// Usage:
//
//	go run ./scripts/httpprobe [-method GET] [-token t] [-expect code] url
//	go run ./scripts/httpprobe -wait 10s url...
//
// The status code is printed to stdout; with -expect the exit status is
// non-zero when it does not match.
//
// -wait turns the probe into a readiness gate: it retries each url
// until one request completes (any status counts — a 401 from an authed
// endpoint still proves the listener is up) or the wait budget runs
// out, and accepts several urls so a smoke script can gate on a whole
// fleet with one call. This replaces the hand-rolled /dev/tcp polling
// loops the smoke scripts used to carry.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"
)

func main() {
	method := flag.String("method", http.MethodGet, "request method")
	token := flag.String("token", "", "send \"Authorization: Bearer <token>\"")
	body := flag.String("body", "", "request body")
	expect := flag.Int("expect", 0, "fail unless the response status matches (0 = report only)")
	timeout := flag.Duration("timeout", 10*time.Second, "request timeout")
	wait := flag.Duration("wait", 0, "readiness mode: retry each url until a response arrives or this budget elapses")
	flag.Parse()
	if flag.NArg() < 1 || (*wait == 0 && flag.NArg() != 1) {
		fmt.Fprintln(os.Stderr, "usage: httpprobe [flags] url  |  httpprobe -wait d url...")
		os.Exit(2)
	}

	if *wait > 0 {
		for _, url := range flag.Args() {
			if err := waitUp(url, *wait); err != nil {
				fmt.Fprintln(os.Stderr, "httpprobe:", err)
				os.Exit(1)
			}
		}
		return
	}

	code, err := probe(*method, flag.Arg(0), *body, *token, *timeout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "httpprobe:", err)
		os.Exit(1)
	}
	fmt.Println(code)
	if *expect != 0 && code != *expect {
		fmt.Fprintf(os.Stderr, "httpprobe: %s %s: status %d, want %d\n", *method, flag.Arg(0), code, *expect)
		os.Exit(1)
	}
}

// probe performs one request and returns the response status.
func probe(method, url, body, token string, timeout time.Duration) (int, error) {
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		return 0, err
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := (&http.Client{Timeout: timeout}).Do(req)
	if err != nil {
		return 0, err
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
	return resp.StatusCode, nil
}

// waitUp polls url until any HTTP response arrives or budget elapses.
// Every poll gets a short per-request timeout so one black-holed
// connection attempt cannot eat the whole budget.
func waitUp(url string, budget time.Duration) error {
	deadline := time.Now().Add(budget)
	var lastErr error
	for {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return fmt.Errorf("%s not up after %s: %v", url, budget, lastErr)
		}
		perTry := time.Second
		if remaining < perTry {
			perTry = remaining
		}
		if _, err := probe(http.MethodGet, url, "", "", perTry); err == nil {
			return nil
		} else {
			lastErr = err
		}
		time.Sleep(100 * time.Millisecond)
	}
}
