// Command ndjsoncheck validates a merged NDJSON progress stream (the
// -progress-json output of the sweep commands) read from stdin: every
// line must parse as a progress event, the aggregate counters must stay
// consistent, and the stream must end with a summary event. With
// -sources n it additionally requires start/finish events from at least
// n distinct remote workers — the dist smoke test uses this to prove a
// two-worker sweep produced one well-formed merged stream.
//
// Usage:
//
//	sweep-command -progress-json stream.ndjson ...
//	go run ./scripts/ndjsoncheck [-sources n] < stream.ndjson
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"halfprice/internal/progress"
)

func main() {
	minSources := flag.Int("sources", 0, "require start/finish events from at least n distinct remote sources")
	flag.Parse()

	sources := map[string]bool{}
	var last progress.Event
	lines := 0
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		lines++
		var ev progress.Event
		if err := json.Unmarshal(line, &ev); err != nil {
			fatalf("line %d is not a valid progress event: %v\n  %s", lines, err, line)
		}
		switch ev.Event {
		case "queued", "start", "finish", "summary":
		default:
			fatalf("line %d has unknown event kind %q", lines, ev.Event)
		}
		if ev.Running < 0 || ev.Done > ev.Queued {
			fatalf("line %d has inconsistent counters (queued=%d running=%d done=%d)",
				lines, ev.Queued, ev.Running, ev.Done)
		}
		if (ev.Event == "start" || ev.Event == "finish") && ev.Source != "" {
			sources[ev.Source] = true
		}
		last = ev
	}
	if err := sc.Err(); err != nil {
		fatalf("reading stdin: %v", err)
	}
	if lines == 0 {
		fatalf("empty stream")
	}
	if last.Event != "summary" {
		fatalf("stream ends with %q, want a summary event", last.Event)
	}
	if len(sources) < *minSources {
		fatalf("events from %d remote source(s), want at least %d", len(sources), *minSources)
	}
	fmt.Printf("ndjsoncheck: %d events ok (%d runs, %d remote source(s))\n", lines, last.Done, len(sources))
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ndjsoncheck: "+format+"\n", args...)
	os.Exit(1)
}
