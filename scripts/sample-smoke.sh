#!/usr/bin/env bash
# Sampled-simulation smoke test (CI and `make sample-smoke`): run the
# Table 2 sweep full and sampled at the same budget, and require
#   1. the sampled run to carry the ci95 error-bar columns,
#   2. every sampled IPC to land near its full-run value (smoke-sized
#      budgets leave few intervals per workload, so the tolerance here
#      is loose; the <1% validation lives in the experiments tests),
#   3. two identical sampled runs to be byte-identical — the sampled
#      path must be exactly as deterministic as the full one.
set -euo pipefail

cd "$(dirname "$0")/.."

insts=${SAMPLE_SMOKE_INSTS:-100000}
tol_bench=${SAMPLE_SMOKE_TOL:-0.15}  # per-benchmark relative IPC error
tol_mean=0.05                        # MEAN-row relative IPC error

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
trap 'exit 130' INT
trap 'exit 143' TERM

go build -o "$tmp/figures" ./cmd/figures

echo "sample-smoke: full-detail reference sweep (t2, $insts insts)" >&2
"$tmp/figures" -fig t2 -insts "$insts" -j 4 -quiet -no-cache > "$tmp/full.txt"

echo "sample-smoke: sampled sweep, twice" >&2
sampled_flags=(-fig t2 -insts "$insts" -j 4 -quiet -no-cache -sample)
"$tmp/figures" "${sampled_flags[@]}" > "$tmp/s1.txt"
"$tmp/figures" "${sampled_flags[@]}" > "$tmp/s2.txt"

if ! cmp "$tmp/s1.txt" "$tmp/s2.txt"; then
  echo "sample-smoke: FAIL — two identical sampled runs differ" >&2
  diff "$tmp/s1.txt" "$tmp/s2.txt" | head -20 >&2 || true
  exit 1
fi

if ! grep -q "ci95-4w" "$tmp/s1.txt"; then
  echo "sample-smoke: FAIL — sampled t2 lacks the ci95 error-bar columns" >&2
  exit 1
fi

# Compare the IPC-4w (col 2) and IPC-8w (col 4) columns row by row.
awk -v tol="$tol_bench" -v tolmean="$tol_mean" '
  FNR == NR { if (NF >= 5) { f4[$1] = $2; f8[$1] = $4 }; next }
  NF >= 5 && $1 in f4 && $2 + 0 > 0 {
    t = ($1 == "MEAN") ? tolmean : tol
    e4 = ($2 - f4[$1]) / f4[$1]; if (e4 < 0) e4 = -e4
    e8 = ($4 - f8[$1]) / f8[$1]; if (e8 < 0) e8 = -e8
    if (e4 > t || e8 > t) {
      printf "sample-smoke: FAIL — %s sampled IPC off by %.1f%%/%.1f%% (full %s/%s, sampled %s/%s)\n",
        $1, e4 * 100, e8 * 100, f4[$1], f8[$1], $2, $4
      bad = 1
    }
    n++
  }
  END {
    if (n < 13) { printf "sample-smoke: FAIL — only %d comparable rows\n", n; bad = 1 }
    exit bad
  }
' "$tmp/full.txt" "$tmp/s1.txt" >&2

echo "sample-smoke: ok — sampled t2 deterministic and near the full-detail sweep" >&2
