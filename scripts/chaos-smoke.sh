#!/usr/bin/env bash
# Chaos smoke test (CI and `make chaos-smoke`), two phases:
#
#   1. In-process fault storm: the internal/chaos storm tests drive a
#      two-worker dist fleet through a seeded faulty transport — dropped
#      connections, injected latency, synthesized 503s, mid-stream body
#      cuts — and assert sweep output byte-identical to a serial run,
#      exactly-once observer accounting, and bounded completion time.
#      The storm's fault schedule is a pure function of its seed
#      (Plan.ScheduleDigest), so a failure here reproduces exactly.
#
#   2. Process-level storm: two sweepd workers started with -chaos-seed
#      inject deterministic pre-run delays (a reproducibly slow fleet);
#      a figures sweep through them must still be byte-identical to the
#      serial in-process run.
set -euo pipefail

cd "$(dirname "$0")/.."

insts=${CHAOS_SMOKE_INSTS:-2000}
seed=${CHAOS_SMOKE_SEED:-1107}
port_a=${CHAOS_SMOKE_PORT_A:-9791}
port_b=${CHAOS_SMOKE_PORT_B:-9792}

tmp=$(mktemp -d)
worker_pids=""
cleanup() {
  kill $worker_pids $(jobs -p) 2>/dev/null || true
  wait 2>/dev/null || true
  rm -rf "$tmp"
}
trap cleanup EXIT
trap 'exit 130' INT
trap 'exit 143' TERM

### Phase 1: seeded in-process fault storm ###########################

echo "chaos-smoke: in-process fault storm (internal/chaos)" >&2
go test -count=1 -run 'TestChaosStorm' ./internal/chaos

### Phase 2: sweepd fleet with -chaos-seed ###########################

go build -o "$tmp/sweepd" ./cmd/sweepd
go build -o "$tmp/figures" ./cmd/figures
go build -o "$tmp/httpprobe" ./scripts/httpprobe

echo "chaos-smoke: serial in-process sweep" >&2
"$tmp/figures" -insts "$insts" -j 1 -quiet -no-cache > "$tmp/serial.txt"

"$tmp/sweepd" -addr "localhost:$port_a" -chaos-seed "$seed" &
worker_pids="$worker_pids $!"
"$tmp/sweepd" -addr "localhost:$port_b" -chaos-seed "$seed" &
worker_pids="$worker_pids $!"
"$tmp/httpprobe" -wait 15s \
  "http://localhost:$port_a/healthz" "http://localhost:$port_b/healthz"

echo "chaos-smoke: sweep through the chaos fleet (seed $seed)" >&2
"$tmp/figures" -insts "$insts" -j 8 -quiet -no-cache \
  -workers "localhost:$port_a,localhost:$port_b" > "$tmp/chaos.txt"

if ! cmp "$tmp/serial.txt" "$tmp/chaos.txt"; then
  echo "chaos-smoke: FAIL — chaos-fleet output differs from serial" >&2
  diff "$tmp/serial.txt" "$tmp/chaos.txt" | head -40 >&2 || true
  exit 1
fi

echo "chaos-smoke: ok — storm tests pass and the chaos-fleet sweep is byte-identical to serial" >&2
