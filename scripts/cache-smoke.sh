#!/usr/bin/env bash
# Result-store smoke test (CI and `make cache-smoke`): SIGKILL a sweep
# mid-flight, resume it against the same cache directory, and require
# the resumed output to be byte-identical to an uninterrupted run. The
# kill lands while results are mid-checkpoint, so this also exercises
# the store's crash-safety (atomic writes: no partial entry may survive
# under a final name) and its dead-holder lock breaking (locks left by
# the killed process must not stall the resume).
set -euo pipefail

cd "$(dirname "$0")/.."

insts=${CACHE_SMOKE_INSTS:-2000}

tmp=$(mktemp -d)
cleanup() {
  kill $(jobs -p) 2>/dev/null || true
  wait 2>/dev/null || true
  rm -rf "$tmp"
}
trap cleanup EXIT
trap 'exit 130' INT
trap 'exit 143' TERM

go build -o "$tmp/figures" ./cmd/figures

echo "cache-smoke: uninterrupted reference sweep" >&2
"$tmp/figures" -insts "$insts" -j 4 -quiet -no-cache > "$tmp/clean.txt"

echo "cache-smoke: sweep into $tmp/cache, SIGKILL mid-flight" >&2
"$tmp/figures" -insts "$insts" -j 4 -quiet -cache-dir "$tmp/cache" > "$tmp/killed.txt" &
victim=$!
# objects/ does not exist until the sweep's store opens; under
# pipefail a bare `ls | wc -l` would fail the script on that race.
checkpointed() { (ls "$tmp/cache/objects" 2>/dev/null || true) | wc -l; }

# Let it checkpoint a few results, then kill -9: no chance to clean up,
# so partially written temp files and orphaned locks are on the table.
for _ in $(seq 1 200); do
  n=$(checkpointed)
  if [ "$n" -ge 3 ]; then
    break
  fi
  sleep 0.1
done
kill -9 "$victim" 2>/dev/null || true
wait "$victim" 2>/dev/null || true
n=$(checkpointed)
if [ "$n" -lt 1 ]; then
  echo "cache-smoke: sweep finished before the kill landed; nothing checkpointed to resume from" >&2
  # Not a failure of the store: fall through — the resume below then
  # just runs from whatever was cached (possibly everything).
fi
echo "cache-smoke: killed with $n results checkpointed" >&2

echo "cache-smoke: resuming from the same cache directory" >&2
"$tmp/figures" -insts "$insts" -j 4 -quiet -cache-dir "$tmp/cache" \
  -progress-json "$tmp/progress.ndjson" > "$tmp/resumed.txt"

if ! cmp "$tmp/clean.txt" "$tmp/resumed.txt"; then
  echo "cache-smoke: FAIL — resumed output differs from the uninterrupted run" >&2
  diff "$tmp/clean.txt" "$tmp/resumed.txt" | head -40 >&2 || true
  exit 1
fi

# The resume must have been served from checkpoint, not recomputed from
# scratch: require cache-hit events in the progress stream.
if [ "$n" -ge 1 ] && ! grep -q '"event":"hit"' "$tmp/progress.ndjson"; then
  echo "cache-smoke: FAIL — no cache-hit events in the resumed sweep's progress stream" >&2
  exit 1
fi

# A third run over the now-complete cache must be all hits: zero
# simulations, still byte-identical.
echo "cache-smoke: fully cached rerun" >&2
"$tmp/figures" -insts "$insts" -j 4 -quiet -cache-dir "$tmp/cache" \
  -progress-json "$tmp/progress2.ndjson" > "$tmp/cached.txt"
if ! cmp "$tmp/clean.txt" "$tmp/cached.txt"; then
  echo "cache-smoke: FAIL — fully cached output differs from the uninterrupted run" >&2
  exit 1
fi
if grep -q '"event":"start"' "$tmp/progress2.ndjson"; then
  echo "cache-smoke: FAIL — fully cached rerun still simulated something" >&2
  exit 1
fi

echo "cache-smoke: ok — resume after SIGKILL byte-identical to the uninterrupted run" >&2
