#!/usr/bin/env bash
# Simulation-as-a-service smoke test (CI and `make serve-smoke`):
# hpserve in front of a two-worker token-authenticated sweepd fleet,
# exercised end to end over HTTP as two tenants:
#
#   1. Auth: a missing or wrong bearer token gets 401; a real tenant
#      token gets through.
#   2. Streaming: tenant alice submits a job and follows its NDJSON
#      event stream to the terminal "done" event; the "start" event is
#      attributed to a fleet worker; the result downloads as JSON.
#   3. Result CDN: tenant bob submits the identical config and is
#      served from the shared store — cached, a "hit" event, zero
#      extra fleet dispatches, response bytes identical to alice's.
#   4. Admission control: a second hpserve with a one-slot queue
#      rejects the overflow submit with 429 + Retry-After.
set -euo pipefail

cd "$(dirname "$0")/.."

insts=${SERVE_SMOKE_INSTS:-20000}
port_a=${SERVE_SMOKE_PORT_A:-9781}   # sweepd worker
port_b=${SERVE_SMOKE_PORT_B:-9782}   # sweepd worker
port_s=${SERVE_SMOKE_PORT_S:-9783}   # hpserve
port_t=${SERVE_SMOKE_PORT_T:-9784}   # hpserve with a tiny queue

tmp=$(mktemp -d)
pids=""
cleanup() {
  kill $pids $(jobs -p) 2>/dev/null || true
  wait 2>/dev/null || true
  rm -rf "$tmp"
}
trap cleanup EXIT
trap 'exit 130' INT
trap 'exit 143' TERM

wait_up() { # port...
  # Readiness gate: httpprobe -wait retries until each listener answers
  # an HTTP request (any status) or the explicit budget runs out.
  urls=""
  for port in "$@"; do
    urls="$urls http://localhost:$port/healthz"
  done
  "$tmp/httpprobe" -wait 15s $urls
}

go build -o "$tmp/sweepd" ./cmd/sweepd
go build -o "$tmp/hpserve" ./cmd/hpserve
go build -o "$tmp/httpprobe" ./scripts/httpprobe

fleet_token="serve-smoke-fleet"
cat > "$tmp/tenants" <<EOF
# serve-smoke tenants
alice:tok-alice
bob:tok-bob
EOF

"$tmp/sweepd" -addr "localhost:$port_a" -token "$fleet_token" &
pids="$pids $!"
"$tmp/sweepd" -addr "localhost:$port_b" -token "$fleet_token" &
pids="$pids $!"
wait_up "$port_a" "$port_b"

"$tmp/hpserve" -addr "localhost:$port_s" \
  -state-dir "$tmp/state" -cache-dir "$tmp/cache" \
  -tenants "$tmp/tenants" \
  -workers "localhost:$port_a,localhost:$port_b" -token "$fleet_token" \
  -health-interval 250ms &
pids="$pids $!"
wait_up "$port_s"

base="http://localhost:$port_s"

### Phase 1: auth ####################################################

echo "serve-smoke: unauthenticated and wrong-token requests must 401" >&2
"$tmp/httpprobe" -expect 401 "$base/v1/jobs" >/dev/null
"$tmp/httpprobe" -token wrong -expect 401 "$base/v1/jobs" >/dev/null
"$tmp/httpprobe" -token tok-alice -expect 200 "$base/v1/jobs" >/dev/null
"$tmp/httpprobe" -expect 200 "$base/healthz" >/dev/null

### Phase 2: submit, stream, fetch as alice ##########################

spec='{"bench":"gzip","insts":'"$insts"'}'
echo "serve-smoke: alice submits $spec" >&2
curl -sf -X POST -H "Authorization: Bearer tok-alice" \
  -H 'Content-Type: application/json' -d "$spec" \
  "$base/v1/jobs" > "$tmp/alice-job.json"
job_a=$(sed -n 's/.*"id":"\([^"]*\)".*/\1/p' "$tmp/alice-job.json")
if [ -z "$job_a" ]; then
  echo "serve-smoke: FAIL — no job id in submit response" >&2
  cat "$tmp/alice-job.json" >&2
  exit 1
fi

# The stream ends at the job's terminal event, so this curl returning
# IS the wait-for-completion.
echo "serve-smoke: streaming $job_a events" >&2
curl -sf --max-time 120 -H "Authorization: Bearer tok-alice" \
  "$base/v1/jobs/$job_a/events" > "$tmp/alice-events.ndjson"
for kind in queued start finish done; do
  if ! grep -q "\"event\":\"$kind\"" "$tmp/alice-events.ndjson" && \
     ! grep -q "\"state\":\"$kind\"" "$tmp/alice-events.ndjson"; then
    echo "serve-smoke: FAIL — no \"$kind\" event in the stream" >&2
    cat "$tmp/alice-events.ndjson" >&2
    exit 1
  fi
done
if ! grep "\"event\":\"start\"" "$tmp/alice-events.ndjson" | grep -q "$port_a\|$port_b"; then
  echo "serve-smoke: FAIL — start event not attributed to a fleet worker" >&2
  cat "$tmp/alice-events.ndjson" >&2
  exit 1
fi

curl -sf -H "Authorization: Bearer tok-alice" \
  "$base/v1/jobs/$job_a/result" > "$tmp/alice-result.json"
grep -q '"Cycles"' "$tmp/alice-result.json" || {
  echo "serve-smoke: FAIL — result payload has no cycles field" >&2
  exit 1
}

### Phase 3: cross-tenant CDN hit as bob #############################

echo "serve-smoke: bob resubmits the identical config" >&2
curl -sf -X POST -H "Authorization: Bearer tok-bob" \
  -H 'Content-Type: application/json' -d "$spec" \
  "$base/v1/jobs" > "$tmp/bob-job.json"
job_b=$(sed -n 's/.*"id":"\([^"]*\)".*/\1/p' "$tmp/bob-job.json")
grep -q '"cached":true' "$tmp/bob-job.json" || {
  echo "serve-smoke: FAIL — cross-tenant resubmit was not a cache hit" >&2
  cat "$tmp/bob-job.json" >&2
  exit 1
}
curl -sf --max-time 30 -H "Authorization: Bearer tok-bob" \
  "$base/v1/jobs/$job_b/events" > "$tmp/bob-events.ndjson"
grep -q '"event":"hit"' "$tmp/bob-events.ndjson" || {
  echo "serve-smoke: FAIL — cached job stream has no hit event" >&2
  cat "$tmp/bob-events.ndjson" >&2
  exit 1
}
curl -sf -H "Authorization: Bearer tok-bob" \
  "$base/v1/jobs/$job_b/result" > "$tmp/bob-result.json"
if ! cmp "$tmp/alice-result.json" "$tmp/bob-result.json"; then
  echo "serve-smoke: FAIL — cached result differs between tenants" >&2
  exit 1
fi

curl -sf -H "Authorization: Bearer tok-alice" "$base/v1/stats" > "$tmp/stats.json"
grep -q '"store_hits":1' "$tmp/stats.json" || {
  echo "serve-smoke: FAIL — stats do not show the store hit" >&2
  cat "$tmp/stats.json" >&2
  exit 1
}
grep -q '"fleet_workers":2' "$tmp/stats.json" || {
  echo "serve-smoke: FAIL — stats do not show the two-worker fleet" >&2
  cat "$tmp/stats.json" >&2
  exit 1
}

# Tenants only see their own jobs.
"$tmp/httpprobe" -token tok-bob -expect 404 "$base/v1/jobs/$job_a" >/dev/null

### Phase 4: admission control #######################################

echo "serve-smoke: overflow submit must be rejected with 429 + Retry-After" >&2
"$tmp/hpserve" -addr "localhost:$port_t" \
  -state-dir "$tmp/state-tiny" -no-cache \
  -j 1 -max-queue 1 &
pids="$pids $!"
wait_up "$port_t"

tiny="http://localhost:$port_t"
big='{"bench":"gzip","insts":1000000}'
curl -sf -X POST -H 'Content-Type: application/json' -d "$big" \
  "$tiny/v1/jobs" >/dev/null                       # occupies the worker
curl -sf -X POST -H 'Content-Type: application/json' \
  -d '{"bench":"gzip","insts":999999}' \
  "$tiny/v1/jobs" >/dev/null                       # fills the queue
code=$(curl -s -o "$tmp/429.json" -D "$tmp/429.hdr" -w '%{http_code}' \
  -X POST -H 'Content-Type: application/json' \
  -d '{"bench":"gzip","insts":999998}' "$tiny/v1/jobs")
if [ "$code" != 429 ]; then
  echo "serve-smoke: FAIL — overflow submit got $code, want 429" >&2
  cat "$tmp/429.json" >&2
  exit 1
fi
grep -qi '^retry-after:' "$tmp/429.hdr" || {
  echo "serve-smoke: FAIL — 429 without a Retry-After header" >&2
  cat "$tmp/429.hdr" >&2
  exit 1
}
grep -q '"retry_after_sec"' "$tmp/429.json" || {
  echo "serve-smoke: FAIL — 429 body without retry_after_sec" >&2
  cat "$tmp/429.json" >&2
  exit 1
}

echo "serve-smoke: ok — auth, streaming, cross-tenant CDN hit and 429 admission all verified" >&2
