module halfprice

go 1.22
