# Development entry points. CI (.github/workflows/ci.yml) runs the same
# commands; `make check` is the full local equivalent of the CI gate.

GO ?= go

.PHONY: build test race lint fmt check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# lint runs the repo's own static-analysis suite (see internal/analysis)
# plus go vet. It exits non-zero on any finding.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/hpvet

fmt:
	gofmt -l -w .

check: build lint race
