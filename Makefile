# Development entry points. CI (.github/workflows/ci.yml) runs the same
# commands; `make check` is the full local equivalent of the CI gate.

GO ?= go

.PHONY: build test race lint fmt generate check sweepd hpserve dist-smoke cache-smoke serve-smoke chaos-smoke sample-smoke bench bench-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# lint runs the repo's own static-analysis suite — all nine analyzers
# (go run ./cmd/hpvet -list) plus stale //hp:nolint detection — and go
# vet. It exits non-zero on any finding.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/hpvet

fmt:
	gofmt -l -w .

# generate rewrites the generated CPI-stack balance test
# (internal/uarch/cpistack_balance_gen_test.go) from the current
# CycleClass constants; it runs as part of the tier-1 `go test ./...`
# path, and TestCPIStackGeneratedCurrent fails if it goes stale.
generate:
	$(GO) run ./cmd/hpvet -write-cpistack-test

# sweepd builds the distributed-sweep worker daemon into bin/.
sweepd:
	$(GO) build -o bin/sweepd ./cmd/sweepd

# hpserve builds the simulation-as-a-service daemon into bin/.
hpserve:
	$(GO) build -o bin/hpserve ./cmd/hpserve

# dist-smoke runs the distributed-sweep equivalence check CI runs: two
# local sweepd workers, one figures sweep through the coordinator,
# byte-identical output vs the serial run, well-formed merged NDJSON.
dist-smoke:
	bash scripts/dist-smoke.sh

# cache-smoke runs the result-store crash/resume check CI runs: SIGKILL
# a caching sweep mid-flight, resume from the same cache directory,
# byte-identical output vs an uninterrupted run.
cache-smoke:
	bash scripts/cache-smoke.sh

# serve-smoke runs the simulation-as-a-service check CI runs: hpserve
# over a two-worker token-authenticated fleet, two tenants end to end —
# auth, NDJSON streaming, a cross-tenant result-CDN hit, and a 429 with
# Retry-After from a one-slot admission queue.
serve-smoke:
	bash scripts/serve-smoke.sh

# chaos-smoke runs the deterministic fault-storm check CI runs: the
# internal/chaos storm tests (a seeded faulty transport over a
# two-worker fleet — results byte-identical to serial, exactly-once
# accounting, bounded time) plus a process-level sweep through sweepd
# workers injecting seeded -chaos-seed pre-run delays.
chaos-smoke:
	bash scripts/chaos-smoke.sh

# sample-smoke runs the sampled-simulation check CI runs: the t2 sweep
# full and sampled at the same budget — sampled output must carry ci95
# columns, stay near the full-detail IPCs, and be byte-identical across
# two identical sampled runs.
sample-smoke:
	bash scripts/sample-smoke.sh

# bench runs the pinned BENCH_<n>.json matrix (PERF.md, README.md
# §Benchmarking) into BENCH_dev.json, diffed against the newest
# committed BENCH_<n>.json automatically. To commit a trajectory point,
# rerun with an explicit -id: see cmd/bench's doc.
bench:
	$(GO) run ./cmd/bench -out BENCH_dev.json

# bench-smoke is the cheap CI shape: a one-cell-per-scheme matrix plus
# schema validation of the smoke output and every committed report.
bench-smoke:
	$(GO) run ./cmd/bench -insts 5000 -repeats 1 -benchmarks gzip \
		-widths 4 -schemes base,halfprice -quiet -out /tmp/bench-smoke.json
	$(GO) run ./cmd/bench -check /tmp/bench-smoke.json
	for f in BENCH_*.json; do $(GO) run ./cmd/bench -check $$f; done

check: build lint race
