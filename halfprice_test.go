package halfprice

import (
	"strings"
	"testing"
)

func TestSimulateBenchmark(t *testing.T) {
	st, err := Simulate(Config4Wide(), "gzip", 20000)
	if err != nil {
		t.Fatal(err)
	}
	if st.Committed != 20000 {
		t.Fatalf("committed %d", st.Committed)
	}
	if ipc := st.IPC(); ipc <= 0 || ipc > 4 {
		t.Fatalf("IPC %v", ipc)
	}
}

func TestSimulateUnknownBenchmark(t *testing.T) {
	if _, err := Simulate(Config4Wide(), "doom", 100); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestMustSimulateUnknownBenchmarkPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown benchmark accepted")
		}
	}()
	MustSimulate(Config4Wide(), "doom", 100)
}

func TestBenchmarkProfile(t *testing.T) {
	p, err := BenchmarkProfile("mcf")
	if err != nil || p.Name != "mcf" {
		t.Fatalf("profile: %v, %v", p.Name, err)
	}
	if _, err := BenchmarkProfile("doom"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	// Tweak and run the profile through the public API.
	p.LoadFrac = 0.2
	st := SimulateProfile(Config4Wide(), p, 10000)
	if st.Committed != 10000 {
		t.Fatal("custom profile did not run")
	}
}

func TestHalfPriceHeadline(t *testing.T) {
	// The paper's core claim through the public API: the half-price
	// machine performs within a few percent of the full-price one.
	base := MustSimulate(Config4Wide(), "crafty", 60000)
	cfg := Config4Wide()
	cfg.Wakeup = WakeupSequential
	cfg.Regfile = RFSequential
	hp := MustSimulate(cfg, "crafty", 60000)
	ratio := hp.IPC() / base.IPC()
	if ratio < 0.94 || ratio > 1.01 {
		t.Fatalf("half-price ratio %.4f outside the paper's envelope", ratio)
	}
}

func TestSimulateKernel(t *testing.T) {
	st := SimulateKernel(Config8Wide(), "parser", 0)
	if st.Committed == 0 {
		t.Fatal("kernel committed nothing")
	}
}

func TestSimulateProgram(t *testing.T) {
	st, err := SimulateProgram(Config4Wide(), `
	ldi r1, 100
loop:
	subi r1, r1, 1
	bnez r1, loop
	halt
`, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Committed != 202 {
		t.Fatalf("committed %d, want 202", st.Committed)
	}
	if _, err := SimulateProgram(Config4Wide(), "bogus instruction", 0); err == nil {
		t.Fatal("bad source accepted")
	}
	if _, err := SimulateProgram(Config4Wide(), "nop", 0); err == nil || !strings.Contains(err.Error(), "trapped") {
		t.Fatalf("trap not reported: %v", err)
	}
}

func TestBenchmarksList(t *testing.T) {
	bs := Benchmarks()
	if len(bs) != 12 || bs[0] != "bzip" || bs[11] != "vpr" {
		t.Fatalf("benchmarks = %v", bs)
	}
	bs[0] = "clobber"
	if Benchmarks()[0] != "bzip" {
		t.Fatal("Benchmarks returned aliased slice")
	}
}

func TestTimingFacade(t *testing.T) {
	conv := SchedulerDelayPs(64, 4, false)
	seq := SchedulerDelayPs(64, 4, true)
	if conv <= seq {
		t.Fatalf("conventional %v should exceed sequential %v", conv, seq)
	}
	base := RegfileAccessNs(160, 8, false)
	half := RegfileAccessNs(160, 8, true)
	if base <= half {
		t.Fatalf("24-port %v should exceed 16-port %v", base, half)
	}
}

func TestRecordAndSimulateTrace(t *testing.T) {
	src := `
	ldi r1, 40
loop:
	subi r1, r1, 1
	bnez r1, loop
	halt
`
	var buf strings.Builder
	n, err := RecordTrace(&buf, src, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != 82 {
		t.Fatalf("recorded %d, want 82", n)
	}
	direct, err := SimulateProgram(Config4Wide(), src, 0)
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := SimulateTrace(Config4Wide(), strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if replayed.Cycles != direct.Cycles || replayed.Committed != direct.Committed {
		t.Fatalf("replay (%d insts, %d cyc) != direct (%d insts, %d cyc)",
			replayed.Committed, replayed.Cycles, direct.Committed, direct.Cycles)
	}
	if _, err := RecordTrace(&buf, "garbage source", 0); err == nil {
		t.Fatal("bad source accepted")
	}
	if _, err := SimulateTrace(Config4Wide(), strings.NewReader("nottrace")); err == nil {
		t.Fatal("bad trace accepted")
	}
}

func TestRenderPipeline(t *testing.T) {
	out, err := RenderPipeline(Config4Wide(), "ldi r1, 1\naddi r2, r1, 1\nhalt", 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, mark := range []string{"F", "D", "I", "C", "ldi r1, 1"} {
		if !strings.Contains(out, mark) {
			t.Fatalf("pipeview missing %q:\n%s", mark, out)
		}
	}
	if _, err := RenderPipeline(Config4Wide(), "junk!", 8); err == nil {
		t.Fatal("bad source accepted")
	}
}

func TestReproduceSingleFigure(t *testing.T) {
	r := NewRunner(Options{Insts: 10000, Benchmarks: []string{"gzip", "mcf"}})
	res := r.Figure16Combined()
	if len(res.Series) != 2 {
		t.Fatalf("series = %d", len(res.Series))
	}
	if v, ok := res.Get("combined-4w", "gzip"); !ok || v <= 0 {
		t.Fatalf("combined-4w gzip = %v, %v", v, ok)
	}
}
